//! Int8 integer microkernels: GEMM band, GEMV and SpMM-row with i32
//! accumulation and a dequantize-in-epilogue store.
//!
//! These are the quantized counterparts of the f32 kernels in
//! [`super::scalar`] / [`super::avx2`], dispatched through the same
//! [`KernelPath`] machinery. Operands are symmetric int8 (see
//! [`crate::quant`]): weights and activations are `q = clamp(round(x/s),
//! -127, 127)` for per-tensor scales, so a GEMM accumulates exact
//! integer products and multiplies the combined scale back in at the
//! store — `c = (Σ a_q·b_q) as f32 * (s_a·s_b)`, followed by the same
//! bias-add/ReLU sequence as the f32 [`Epilogue`].
//!
//! # Bitwise parity across paths
//!
//! Unlike f32, int8×int8→i32 accumulation is **exact**: |q| ≤ 127 so
//! every product fits in 15 bits and an i32 accumulator holds the sum
//! without rounding (callers keep `k` under [`MAX_K_I8`], asserted at
//! every entry). Exact integer addition is associative, so scalar and
//! AVX2 produce the *same* i32 totals regardless of blocking. The
//! dequantize store then performs an identical float sequence on both
//! paths — `i32 as f32` (one round-to-nearest-even, which is exactly
//! what `_mm256_cvtepi32_ps` performs), one `* scale`, one `+ bias`,
//! compare-and-mask ReLU, never an FMA — so the int8 kernels are
//! **bitwise identical on every path**, including `avx2-fma` (there is
//! no integer FMA; that path simply runs the AVX2 kernel).
//!
//! # Layouts
//!
//! * `A` is row-major i8 with row stride `kp` = `k` rounded up to even
//!   (odd-`k` rows are zero-padded — harmless under symmetric
//!   quantization, `0` maps to `0.0`).
//! * `B` is pair-interleaved panel-packed: `n.div_ceil(PANEL)` panels
//!   of `kp × PANEL` i8, where each panel stores depth *pairs*
//!   `(b[2t, j], b[2t+1, j])` contiguously per column `j`. One 16-byte
//!   load therefore yields a full `PANEL`-column pair slice in exactly
//!   the lane order `_mm256_madd_epi16` wants (see
//!   [`crate::quant::pack_b_i8_into`]).
//! * SpMM `B` is plain row-major i8 (`k × n`), matching the f32 SpMM.

use super::{EpiBias, Epilogue, KernelPath, PANEL};

/// Maximum depth (`kp`, or SpMM row nnz) the int8 kernels accept:
/// `MAX_K_I8 * 127 * 127 < i32::MAX`, so an i32 accumulator can never
/// wrap. Far above any layer in this workspace (Caffenet fc6 has
/// `k = 9216`).
pub const MAX_K_I8: usize = 1 << 17;

/// One row band of the pair-interleaved int8 GEMM with a fused
/// dequantize + bias/ReLU store: rows `row0 .. row0 + c_band.len()/n`
/// of the row-major i8 `a_data` (row stride `kp`, even) against the
/// panel-packed i8 `b_data`, writing dequantized f32 into `c_band`.
///
/// `scale` is the combined dequantization factor (`s_a · s_b`); `epi`
/// is applied after it exactly as in the f32 fused kernels. Outputs are
/// bitwise identical on every [`KernelPath`] (see module docs).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_packed_band_with(
    path: KernelPath,
    a_data: &[i8],
    kp: usize,
    n: usize,
    b_data: &[i8],
    c_band: &mut [f32],
    row0: usize,
    scale: f32,
    epi: Epilogue<'_>,
) {
    match path {
        KernelPath::Scalar => {
            scalar::gemm_i8_packed_band(a_data, kp, n, b_data, c_band, row0, scale, epi)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2`/`Avx2Fma` are only ever produced by
        // `super::selected()` / `super::force()`, both of which verify
        // via `is_available()` that the CPU reports the avx2 feature
        // the target_feature kernel requires (fma implies avx2 too;
        // integer kernels have no FMA variant). Slice bounds are
        // asserted inside the kernel before any raw load.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe {
            avx2::gemm_i8_packed_band(a_data, kp, n, b_data, c_band, row0, scale, epi)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemm_i8_packed_band(a_data, kp, n, b_data, c_band, row0, scale, epi),
    }
}

/// [`gemm_i8_packed_band_with`] on the process-selected path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_packed_band(
    a_data: &[i8],
    kp: usize,
    n: usize,
    b_data: &[i8],
    c_band: &mut [f32],
    row0: usize,
    scale: f32,
    epi: Epilogue<'_>,
) {
    gemm_i8_packed_band_with(
        super::selected(),
        a_data,
        kp,
        n,
        b_data,
        c_band,
        row0,
        scale,
        epi,
    );
}

/// Int8 matvec against the pair-interleaved panel-packed `b_data`:
/// `c_row[..n] = dequant(a_row · B)` with `kp = a_row.len()` (even).
/// `row_abs` is the absolute output row this matvec computes — it
/// indexes a [`EpiBias::PerRow`] bias (0 for a standalone matvec).
/// The batch-1 shape of [`gemm_i8_packed_band_with`], bit-identical to
/// a 1-row band on every path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gemv_i8_packed_with(
    path: KernelPath,
    a_row: &[i8],
    n: usize,
    b_data: &[i8],
    c_row: &mut [f32],
    row_abs: usize,
    scale: f32,
    epi: Epilogue<'_>,
) {
    match path {
        KernelPath::Scalar => scalar::gemv_i8_packed(a_row, n, b_data, c_row, row_abs, scale, epi),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`
        // (see `gemm_i8_packed_band_with`); bounds asserted in the kernel.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe {
            avx2::gemv_i8_packed(a_row, n, b_data, c_row, row_abs, scale, epi)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemv_i8_packed(a_row, n, b_data, c_row, row_abs, scale, epi),
    }
}

/// [`gemv_i8_packed_with`] on the process-selected path.
#[inline]
pub fn gemv_i8_packed(
    a_row: &[i8],
    n: usize,
    b_data: &[i8],
    c_row: &mut [f32],
    row_abs: usize,
    scale: f32,
    epi: Epilogue<'_>,
) {
    gemv_i8_packed_with(
        super::selected(),
        a_row,
        n,
        b_data,
        c_row,
        row_abs,
        scale,
        epi,
    );
}

/// Column-block width of the int8 SpMM row kernel's stack-resident i32
/// accumulator. Blocking exists because the output row is f32 but the
/// accumulation must be integer-exact; it never affects results (exact
/// integer sums are blocking-invariant).
const SPMM_I8_BLOCK: usize = 256;

/// One CSR row of int8 sparse×dense with a fused dequantize +
/// bias/ReLU store: `c_row = dequant(Σ_i values[i] * B[col_idx[i], :])`
/// over the row-major i8 `b_data` (`n` columns). The accumulator is
/// i32 (exact — f32 accumulation would lose integer exactness past
/// 2^24 on conv-sized rows), blocked over `SPMM_I8_BLOCK`-column
/// slices that re-walk the row's nonzeros. `bias`/`relu` mirror the
/// f32 [`super::spmm_row_fused_with`] scalar-bias epilogue, applied
/// after the `* scale` dequantization.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn spmm_i8_row_with(
    path: KernelPath,
    values: &[i8],
    col_idx: &[u32],
    b_data: &[i8],
    n: usize,
    c_row: &mut [f32],
    scale: f32,
    bias: Option<f32>,
    relu: bool,
) {
    match path {
        KernelPath::Scalar => {
            scalar::spmm_i8_row(values, col_idx, b_data, n, c_row, scale, bias, relu)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`
        // (see `gemm_i8_packed_band_with`); bounds asserted in the kernel.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe {
            avx2::spmm_i8_row(values, col_idx, b_data, n, c_row, scale, bias, relu)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::spmm_i8_row(values, col_idx, b_data, n, c_row, scale, bias, relu),
    }
}

/// [`spmm_i8_row_with`] on the process-selected path.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn spmm_i8_row(
    values: &[i8],
    col_idx: &[u32],
    b_data: &[i8],
    n: usize,
    c_row: &mut [f32],
    scale: f32,
    bias: Option<f32>,
    relu: bool,
) {
    spmm_i8_row_with(
        super::selected(),
        values,
        col_idx,
        b_data,
        n,
        c_row,
        scale,
        bias,
        relu,
    );
}

/// Dequantize one accumulator slot and apply the epilogue — the single
/// shared float sequence both paths replay per element: `i32 as f32`,
/// `* scale`, `+ bias`, compare-ReLU. Kept scalar here as the
/// reference; the AVX2 store performs the same operations eight lanes
/// at a time (`_mm256_cvtepi32_ps` rounds exactly like `as f32`).
#[inline(always)]
fn dequant_one(acc: i32, scale: f32, bias: f32, has_bias: bool, relu: bool) -> f32 {
    let mut v = acc as f32 * scale;
    if has_bias {
        v += bias;
    }
    if relu {
        v = if v > 0.0 { v } else { 0.0 };
    }
    v
}

/// Portable reference kernels — the parity oracle for the AVX2 path.
mod scalar {
    use super::{dequant_one, EpiBias, Epilogue, MAX_K_I8, PANEL, SPMM_I8_BLOCK};

    /// Dequantize-and-store one (possibly partial-width) panel slot.
    fn store_dequant(
        acc: &[i32; PANEL],
        row: &mut [f32],
        c0: usize,
        width: usize,
        row_abs: usize,
        scale: f32,
        epi: Epilogue<'_>,
    ) {
        for (j, &a) in acc[..width].iter().enumerate() {
            let (bias, has_bias) = match epi.bias {
                Some(EpiBias::PerRow(b)) => (b[row_abs], true),
                Some(EpiBias::PerCol(b)) => (b[c0 + j], true),
                None => (0.0, false),
            };
            row[c0 + j] = dequant_one(a, scale, bias, has_bias, epi.relu);
        }
    }

    pub fn gemv_i8_packed(
        a_row: &[i8],
        n: usize,
        b_data: &[i8],
        c_row: &mut [f32],
        row_abs: usize,
        scale: f32,
        epi: Epilogue<'_>,
    ) {
        let kp = a_row.len();
        assert!(kp.is_multiple_of(2), "int8 pack: depth {kp} must be even");
        assert!(kp <= MAX_K_I8, "int8 kernel: depth {kp} overflows i32");
        let panels = n.div_ceil(PANEL);
        let plen = kp * PANEL;
        assert!(b_data.len() >= panels * plen);
        assert!(c_row.len() >= n);
        epi.check(row_abs + 1, n);
        for p in 0..panels {
            let panel = &b_data[p * plen..(p + 1) * plen];
            let mut acc = [0i32; PANEL];
            for (t, pair) in panel.chunks_exact(2 * PANEL).enumerate() {
                let a0 = a_row[2 * t] as i32;
                let a1 = a_row[2 * t + 1] as i32;
                for (a, bp) in acc.iter_mut().zip(pair.chunks_exact(2)) {
                    *a += a0 * bp[0] as i32 + a1 * bp[1] as i32;
                }
            }
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            store_dequant(&acc, c_row, c0, width, row_abs, scale, epi);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn gemm_i8_packed_band(
        a_data: &[i8],
        kp: usize,
        n: usize,
        b_data: &[i8],
        c_band: &mut [f32],
        row0: usize,
        scale: f32,
        epi: Epilogue<'_>,
    ) {
        let rows_here = c_band.len() / n.max(1);
        assert!(a_data.len() >= (row0 + rows_here) * kp);
        // Exact integer accumulation makes any row/panel blocking
        // bit-identical, so the band is simply the GEMV per row — no
        // separate register-blocked variant to keep in lockstep.
        for local_r in 0..rows_here {
            let r = row0 + local_r;
            gemv_i8_packed(
                &a_data[r * kp..(r + 1) * kp],
                n,
                b_data,
                &mut c_band[local_r * n..(local_r + 1) * n],
                r,
                scale,
                epi,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn spmm_i8_row(
        values: &[i8],
        col_idx: &[u32],
        b_data: &[i8],
        n: usize,
        c_row: &mut [f32],
        scale: f32,
        bias: Option<f32>,
        relu: bool,
    ) {
        assert_eq!(values.len(), col_idx.len());
        assert!(values.len() <= MAX_K_I8, "int8 spmm: row nnz overflows i32");
        assert!(c_row.len() >= n);
        let mut c0 = 0;
        while c0 < n {
            let width = SPMM_I8_BLOCK.min(n - c0);
            let mut acc = [0i32; SPMM_I8_BLOCK];
            for (&v, &ci) in values.iter().zip(col_idx.iter()) {
                let base = ci as usize * n + c0;
                let brow = &b_data[base..base + width];
                let vi = v as i32;
                for (a, &bv) in acc[..width].iter_mut().zip(brow.iter()) {
                    *a += vi * bv as i32;
                }
            }
            for (j, &a) in acc[..width].iter().enumerate() {
                c_row[c0 + j] = dequant_one(a, scale, bias.unwrap_or(0.0), bias.is_some(), relu);
            }
            c0 += width;
        }
    }
}

/// AVX2 int8 kernels (`x86_64` only). Same caller contract as
/// [`super::avx2`]: the dispatch layer above is the only caller and has
/// verified the avx2 CPU feature; slice invariants are asserted at
/// entry. `_mm256_madd_epi16` on sign-extended i8 pairs is exact (the
/// only saturating madd case needs two `-32768` inputs, unreachable
/// from i8), so these produce the same i32 totals as the scalar loops.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_op_in_unsafe_fn)]
mod avx2 {
    use super::{EpiBias, Epilogue, MAX_K_I8, PANEL, SPMM_I8_BLOCK};
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    thread_local! {
        /// Per-thread scratch holding the current A band sign-extended
        /// to i16. Widening once per kernel call turns the per-panel
        /// activation broadcast from two scalar byte loads plus
        /// shift/or/`set1` (~5 uops, repeated for every panel pass)
        /// into a single `vpbroadcastd` from memory — the band kernel's
        /// former bottleneck. Purely a speed transform: the widened
        /// values are the same integers, so results stay bit-identical.
        static A16: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };

        /// Per-thread i32 accumulator spill for the depth-chunked band
        /// path (`pairs > KC_PAIRS`): 8 rows × panel-rounded `n`.
        static ACC32: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
    }

    /// Depth-pair chunk of the blocked band path. At Caffenet's deepest
    /// shapes (`kp` ≈ 2300+) the eight widened A rows plus one packed
    /// panel overflow L1 and every panel pass re-misses; chunking the
    /// depth walk keeps the live slices (8 × `KC_PAIRS` i16 of A,
    /// `KC_PAIRS × 16` i8 of B, the i32 spill row) cache-resident.
    /// Exact integer accumulation makes the re-blocking invisible in
    /// the results.
    const KC_PAIRS: usize = 256;

    /// Sign-extend `rows` rows of the row-major i8 `a_data` (row stride
    /// `kp`, starting at `row0`) into `buf` as contiguous i16 rows.
    #[inline(always)]
    unsafe fn widen_rows(a_data: &[i8], row0: usize, rows: usize, kp: usize, buf: &mut Vec<i16>) {
        buf.resize(rows * kp, 0);
        for r in 0..rows {
            let src = a_data.as_ptr().add((row0 + r) * kp);
            let dst = buf.as_mut_ptr().add(r * kp);
            let mut t = 0;
            while t + 16 <= kp {
                let v = _mm_loadu_si128(src.add(t) as *const __m128i);
                _mm256_storeu_si256(dst.add(t) as *mut __m256i, _mm256_cvtepi8_epi16(v));
                t += 16;
            }
            while t < kp {
                *dst.add(t) = *src.add(t) as i16;
                t += 1;
            }
        }
    }

    /// Per-store epilogue state, bounds-checked once at kernel entry
    /// (mirror of the f32 `FusedEpi` in [`crate::kernels::avx2`]).
    #[derive(Clone, Copy)]
    struct EpiI8<'a> {
        row_bias: Option<&'a [f32]>,
        col_bias: Option<&'a [f32]>,
        relu: bool,
    }

    impl<'a> EpiI8<'a> {
        fn from_epilogue(epi: Epilogue<'a>, rows_needed: usize, n: usize) -> Self {
            epi.check(rows_needed, n);
            let (row_bias, col_bias) = match epi.bias {
                Some(EpiBias::PerRow(b)) => (Some(b), None),
                Some(EpiBias::PerCol(b)) => (None, Some(b)),
                None => (None, None),
            };
            EpiI8 {
                row_bias,
                col_bias,
                relu: epi.relu,
            }
        }
    }

    /// Broadcast the widened activation pair `(a[2t], a[2t+1])` into
    /// all eight 32-bit lanes as adjacent i16s — the left operand of
    /// `_mm256_madd_epi16` against a pair-interleaved B load. `aw` is
    /// an i16 row from [`widen_rows`], so one pair is exactly one
    /// (possibly unaligned) 32-bit load: a single `vpbroadcastd`.
    #[inline(always)]
    unsafe fn broadcast_pair(aw: *const i16, t: usize) -> __m256i {
        _mm256_set1_epi32((aw.add(2 * t) as *const i32).read_unaligned())
    }

    /// Load depth-pair `t` of one packed panel: 16 i8 → 16 i16 lanes in
    /// `(b[2t, j], b[2t+1, j])` column order.
    #[inline(always)]
    unsafe fn load_pair_panel(pn: *const i8, t: usize) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(pn.add(t * 2 * PANEL) as *const __m128i))
    }

    /// Dequantize one accumulator register and store it through the
    /// epilogue — element-wise the exact float sequence of the scalar
    /// `dequant_one`: `_mm256_cvtepi32_ps` rounds like `i32 as f32`
    /// (nearest-even), then one mul, one add, compare-and-mask ReLU.
    /// No FMA anywhere, so lanes are bitwise equal to scalar.
    #[inline(always)]
    unsafe fn store_dequant(
        acc: __m256i,
        row: &mut [f32],
        c0: usize,
        width: usize,
        row_abs: usize,
        scale: f32,
        fe: EpiI8<'_>,
    ) {
        let mut v = _mm256_mul_ps(_mm256_cvtepi32_ps(acc), _mm256_set1_ps(scale));
        if let Some(b) = fe.row_bias {
            v = _mm256_add_ps(v, _mm256_set1_ps(b[row_abs]));
        }
        if let Some(b) = fe.col_bias {
            let bv = if width == PANEL {
                // In bounds: width == PANEL implies c0 + PANEL <= n and
                // `from_epilogue` asserted b.len() >= n.
                _mm256_loadu_ps(b.as_ptr().add(c0))
            } else {
                let mut tmp = [0.0f32; PANEL];
                tmp[..width].copy_from_slice(&b[c0..c0 + width]);
                _mm256_loadu_ps(tmp.as_ptr())
            };
            v = _mm256_add_ps(v, bv);
        }
        if fe.relu {
            let pos = _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ);
            v = _mm256_and_ps(v, pos);
        }
        if width == PANEL {
            _mm256_storeu_ps(row.as_mut_ptr().add(c0), v);
        } else {
            let mut tmp = [0.0f32; PANEL];
            _mm256_storeu_ps(tmp.as_mut_ptr(), v);
            row[c0..c0 + width].copy_from_slice(&tmp[..width]);
        }
    }

    /// Int8 GEMV over pair-interleaved panels; see the scalar oracle.
    ///
    /// # Safety
    /// CPU must support AVX2 (verified by the dispatch layer).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemv_i8_packed(
        a_row: &[i8],
        n: usize,
        b_data: &[i8],
        c_row: &mut [f32],
        row_abs: usize,
        scale: f32,
        epi: Epilogue<'_>,
    ) {
        let kp = a_row.len();
        assert!(kp.is_multiple_of(2), "int8 pack: depth {kp} must be even");
        assert!(kp <= MAX_K_I8, "int8 kernel: depth {kp} overflows i32");
        let panels = n.div_ceil(PANEL);
        let plen = kp * PANEL;
        assert!(b_data.len() >= panels * plen);
        assert!(c_row.len() >= n);
        let fe = EpiI8::from_epilogue(epi, row_abs + 1, n);
        A16.with(|cell| {
            let buf = &mut *cell.borrow_mut();
            widen_rows(a_row, 0, 1, kp, buf);
            gemv_body(buf.as_ptr(), kp, n, b_data, c_row, row_abs, scale, fe);
        });
    }

    /// Shared GEMV body over a widened (i16) activation row: four
    /// panels per pass (4 independent madd/add chains) while the packed
    /// operand streams through once.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn gemv_body(
        ap: *const i16,
        kp: usize,
        n: usize,
        b_data: &[i8],
        c_row: &mut [f32],
        row_abs: usize,
        scale: f32,
        fe: EpiI8<'_>,
    ) {
        let pairs = kp / 2;
        let panels = n.div_ceil(PANEL);
        let plen = kp * PANEL;
        let mut p = 0;
        while p + 4 <= panels {
            let pn0 = b_data.as_ptr().add(p * plen);
            let pn1 = b_data.as_ptr().add((p + 1) * plen);
            let pn2 = b_data.as_ptr().add((p + 2) * plen);
            let pn3 = b_data.as_ptr().add((p + 3) * plen);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            for t in 0..pairs {
                let av = broadcast_pair(ap, t);
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(load_pair_panel(pn0, t), av));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(load_pair_panel(pn1, t), av));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(load_pair_panel(pn2, t), av));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(load_pair_panel(pn3, t), av));
            }
            for (i, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let c0 = (p + i) * PANEL;
                let width = PANEL.min(n - c0);
                store_dequant(acc, c_row, c0, width, row_abs, scale, fe);
            }
            p += 4;
        }
        while p < panels {
            let pn = b_data.as_ptr().add(p * plen);
            let mut acc = _mm256_setzero_si256();
            for t in 0..pairs {
                let av = broadcast_pair(ap, t);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(load_pair_panel(pn, t), av));
            }
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            store_dequant(acc, c_row, c0, width, row_abs, scale, fe);
            p += 1;
        }
    }

    /// Int8 GEMM band: four output rows × two packed panels per pass
    /// (eight live madd/add chains, each B load shared by four rows).
    /// Exact i32 accumulation keeps this bit-identical to the scalar
    /// row-at-a-time walk.
    ///
    /// # Safety
    /// CPU must support AVX2 (verified by the dispatch layer).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_i8_packed_band(
        a_data: &[i8],
        kp: usize,
        n: usize,
        b_data: &[i8],
        c_band: &mut [f32],
        row0: usize,
        scale: f32,
        epi: Epilogue<'_>,
    ) {
        assert!(kp.is_multiple_of(2), "int8 pack: depth {kp} must be even");
        assert!(kp <= MAX_K_I8, "int8 kernel: depth {kp} overflows i32");
        let panels = n.div_ceil(PANEL);
        let plen = kp * PANEL;
        let rows_here = c_band.len() / n.max(1);
        assert!(a_data.len() >= (row0 + rows_here) * kp);
        assert!(b_data.len() >= panels * plen);
        assert!(c_band.len() >= rows_here * n);
        let fe = EpiI8::from_epilogue(epi, row0 + rows_here, n);
        A16.with(|cell| {
            let buf = &mut *cell.borrow_mut();
            widen_rows(a_data, row0, rows_here, kp, buf);
            band_body(
                buf.as_ptr(),
                rows_here,
                row0,
                kp,
                n,
                b_data,
                c_band,
                scale,
                fe,
            );
        });
    }

    /// Accumulate depth-pairs `t0..t1` of one packed panel into eight
    /// row accumulators — the shared inner loop of both band variants.
    #[inline(always)]
    unsafe fn accum8(
        acc: &mut [__m256i; 8],
        pn: *const i8,
        ar: &[*const i16; 8],
        t0: usize,
        t1: usize,
    ) {
        for t in t0..t1 {
            let bv = load_pair_panel(pn, t);
            acc[0] = _mm256_add_epi32(acc[0], _mm256_madd_epi16(bv, broadcast_pair(ar[0], t)));
            acc[1] = _mm256_add_epi32(acc[1], _mm256_madd_epi16(bv, broadcast_pair(ar[1], t)));
            acc[2] = _mm256_add_epi32(acc[2], _mm256_madd_epi16(bv, broadcast_pair(ar[2], t)));
            acc[3] = _mm256_add_epi32(acc[3], _mm256_madd_epi16(bv, broadcast_pair(ar[3], t)));
            acc[4] = _mm256_add_epi32(acc[4], _mm256_madd_epi16(bv, broadcast_pair(ar[4], t)));
            acc[5] = _mm256_add_epi32(acc[5], _mm256_madd_epi16(bv, broadcast_pair(ar[5], t)));
            acc[6] = _mm256_add_epi32(acc[6], _mm256_madd_epi16(bv, broadcast_pair(ar[6], t)));
            acc[7] = _mm256_add_epi32(acc[7], _mm256_madd_epi16(bv, broadcast_pair(ar[7], t)));
        }
    }

    /// Band body over the widened A rows (`aw`, row stride `kp`): four
    /// output rows × one packed panel per pass, eight live madd/add
    /// chains, each B load shared by eight rows. One panel (not two)
    /// per pass keeps the streamed B working set at `kp × PANEL` bytes
    /// — small enough to stay L1-resident next to the widened A rows
    /// even at Caffenet's deepest `k` — while eight rows halve the
    /// per-row B traffic of a four-row block.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn band_body(
        aw: *const i16,
        rows_here: usize,
        row0: usize,
        kp: usize,
        n: usize,
        b_data: &[i8],
        c_band: &mut [f32],
        scale: f32,
        fe: EpiI8<'_>,
    ) {
        let panels = n.div_ceil(PANEL);
        let plen = kp * PANEL;
        let pairs = kp / 2;

        const RB: usize = 8;
        let mut local_r = 0;
        if pairs <= KC_PAIRS {
            // Shallow depth: the whole panel plus the A rows fit L1 —
            // accumulate each panel in registers, store once.
            while local_r + RB <= rows_here {
                let r = row0 + local_r;
                let ar: [*const i16; RB] = std::array::from_fn(|i| aw.add((local_r + i) * kp));
                for p in 0..panels {
                    let pn = b_data.as_ptr().add(p * plen);
                    let mut acc = [_mm256_setzero_si256(); RB];
                    accum8(&mut acc, pn, &ar, 0, pairs);
                    let c0 = p * PANEL;
                    let width = PANEL.min(n - c0);
                    for (i, a) in acc.into_iter().enumerate() {
                        let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                        store_dequant(a, row, c0, width, r + i, scale, fe);
                    }
                }
                local_r += RB;
            }
        } else {
            // Deep depth: chunk the depth walk, spilling partial i32
            // sums to a panel-rounded scratch (see [`KC_PAIRS`]).
            ACC32.with(|cell| {
                let spill = &mut *cell.borrow_mut();
                let stride = panels * PANEL;
                spill.resize(RB * stride, 0);
                while local_r + RB <= rows_here {
                    let r = row0 + local_r;
                    let ar: [*const i16; RB] = std::array::from_fn(|i| aw.add((local_r + i) * kp));
                    spill.fill(0);
                    let mut t0 = 0;
                    while t0 < pairs {
                        let t1 = (t0 + KC_PAIRS).min(pairs);
                        for p in 0..panels {
                            let pn = b_data.as_ptr().add(p * plen);
                            let sp = spill.as_mut_ptr().add(p * PANEL);
                            let mut acc: [__m256i; RB] = std::array::from_fn(|i| {
                                _mm256_loadu_si256(sp.add(i * stride) as *const __m256i)
                            });
                            accum8(&mut acc, pn, &ar, t0, t1);
                            for (i, a) in acc.into_iter().enumerate() {
                                _mm256_storeu_si256(sp.add(i * stride) as *mut __m256i, a);
                            }
                        }
                        t0 = t1;
                    }
                    for p in 0..panels {
                        let c0 = p * PANEL;
                        let width = PANEL.min(n - c0);
                        for i in 0..RB {
                            let a = _mm256_loadu_si256(
                                spill.as_ptr().add(i * stride + c0) as *const __m256i
                            );
                            let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                            store_dequant(a, row, c0, width, r + i, scale, fe);
                        }
                    }
                    local_r += RB;
                }
            });
        }
        // 4..8 remaining rows: one four-row pass, same single-panel walk.
        if local_r + 4 <= rows_here {
            let r = row0 + local_r;
            let ar: [*const i16; 4] = std::array::from_fn(|i| aw.add((local_r + i) * kp));
            for p in 0..panels {
                let pn = b_data.as_ptr().add(p * plen);
                let mut acc = [_mm256_setzero_si256(); 4];
                for t in 0..pairs {
                    let bv = load_pair_panel(pn, t);
                    acc[0] =
                        _mm256_add_epi32(acc[0], _mm256_madd_epi16(bv, broadcast_pair(ar[0], t)));
                    acc[1] =
                        _mm256_add_epi32(acc[1], _mm256_madd_epi16(bv, broadcast_pair(ar[1], t)));
                    acc[2] =
                        _mm256_add_epi32(acc[2], _mm256_madd_epi16(bv, broadcast_pair(ar[2], t)));
                    acc[3] =
                        _mm256_add_epi32(acc[3], _mm256_madd_epi16(bv, broadcast_pair(ar[3], t)));
                }
                let c0 = p * PANEL;
                let width = PANEL.min(n - c0);
                for (i, a) in acc.into_iter().enumerate() {
                    let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                    store_dequant(a, row, c0, width, r + i, scale, fe);
                }
            }
            local_r += 4;
        }
        // Trailing rows one at a time through the GEMV body.
        for local_r in local_r..rows_here {
            gemv_body(
                aw.add(local_r * kp),
                kp,
                n,
                b_data,
                &mut c_band[local_r * n..(local_r + 1) * n],
                row0 + local_r,
                scale,
                fe,
            );
        }
    }

    /// Int8 SpMM row; see the scalar oracle for the blocking contract.
    ///
    /// # Safety
    /// CPU must support AVX2 (verified by the dispatch layer).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn spmm_i8_row(
        values: &[i8],
        col_idx: &[u32],
        b_data: &[i8],
        n: usize,
        c_row: &mut [f32],
        scale: f32,
        bias: Option<f32>,
        relu: bool,
    ) {
        assert_eq!(values.len(), col_idx.len());
        assert!(values.len() <= MAX_K_I8, "int8 spmm: row nnz overflows i32");
        assert!(c_row.len() >= n);
        let mut c0 = 0;
        while c0 < n {
            let width = SPMM_I8_BLOCK.min(n - c0);
            let mut acc = [0i32; SPMM_I8_BLOCK];
            for (&v, &ci) in values.iter().zip(col_idx.iter()) {
                let base = ci as usize * n + c0;
                // Bounds for the raw 8-byte loads below: the full block
                // slice must be inside b_data.
                assert!(b_data.len() >= base + width);
                let brow = b_data.as_ptr().add(base);
                let vb = _mm256_set1_epi32(v as i32);
                let mut j = 0;
                while j + PANEL <= width {
                    let bv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(brow.add(j) as *const __m128i));
                    let av = _mm256_loadu_si256(acc.as_ptr().add(j) as *const __m256i);
                    let sum = _mm256_add_epi32(av, _mm256_mullo_epi32(bv, vb));
                    _mm256_storeu_si256(acc.as_mut_ptr().add(j) as *mut __m256i, sum);
                    j += PANEL;
                }
                let vi = v as i32;
                while j < width {
                    acc[j] += vi * *brow.add(j) as i32;
                    j += 1;
                }
            }
            for (j, &a) in acc[..width].iter().enumerate() {
                c_row[c0 + j] =
                    super::dequant_one(a, scale, bias.unwrap_or(0.0), bias.is_some(), relu);
            }
            c0 += width;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::available_paths;
    use super::*;

    fn det_i8(i: usize, m: usize) -> i8 {
        (((i * 37 + 11) % m) as i64 - (m as i64 / 2)) as i8
    }

    /// Pack a row-major i8 `k×n` matrix into pair-interleaved panels
    /// (test-local; the production pack in `crate::quant` quantizes
    /// from f32 and is tested there).
    fn pack_pairs(b: &[i8], k: usize, n: usize) -> (Vec<i8>, usize) {
        let kp = k.next_multiple_of(2);
        let panels = n.div_ceil(PANEL);
        let mut out = vec![0i8; panels * kp * PANEL];
        for p in 0..panels {
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            let dst = &mut out[p * kp * PANEL..(p + 1) * kp * PANEL];
            for r in 0..k {
                for j in 0..width {
                    dst[(r / 2) * 2 * PANEL + 2 * j + (r % 2)] = b[r * n + c0 + j];
                }
            }
        }
        (out, kp)
    }

    fn reference_gemm(a: &[i8], m: usize, k: usize, n: usize, b: &[i8], scale: f32) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for r in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for t in 0..k {
                    acc += a[r * k + t] as i32 * b[t * n + j] as i32;
                }
                c[r * n + j] = acc as f32 * scale;
            }
        }
        c
    }

    #[test]
    fn band_matches_reference_on_all_paths() {
        for &(m, k, n) in &[(1, 5, 3), (4, 8, 16), (7, 9, 13), (3, 0, 5), (5, 6, 1)] {
            let a: Vec<i8> = (0..m * k).map(|i| det_i8(i, 255)).collect();
            let b: Vec<i8> = (0..k * n).map(|i| det_i8(i + 3, 255)).collect();
            let (packed, kp) = pack_pairs(&b, k, n);
            // Re-pad A rows to the even stride.
            let mut ap = vec![0i8; m * kp];
            for r in 0..m {
                ap[r * kp..r * kp + k].copy_from_slice(&a[r * k..(r + 1) * k]);
            }
            let want = reference_gemm(&a, m, k, n, &b, 0.125);
            for path in available_paths() {
                let mut got = vec![0.0f32; m * n];
                gemm_i8_packed_band_with(
                    path,
                    &ap,
                    kp,
                    n,
                    &packed,
                    &mut got,
                    0,
                    0.125,
                    Epilogue::NONE,
                );
                assert_eq!(got, want, "path {} shape {m}x{k}x{n}", path.name());
            }
        }
    }

    #[test]
    fn epilogue_bias_and_relu_apply() {
        let (m, k, n) = (2, 4, 6);
        let a: Vec<i8> = (0..m * k).map(|i| det_i8(i, 9)).collect();
        let b: Vec<i8> = (0..k * n).map(|i| det_i8(i + 1, 9)).collect();
        let (packed, kp) = pack_pairs(&b, k, n);
        let row_bias = [10.0f32, -100.0];
        let plain = reference_gemm(&a, m, k, n, &b, 1.0);
        for path in available_paths() {
            let mut got = vec![0.0f32; m * n];
            gemm_i8_packed_band_with(
                path,
                &a,
                kp,
                n,
                &packed,
                &mut got,
                0,
                1.0,
                Epilogue {
                    bias: Some(EpiBias::PerRow(&row_bias)),
                    relu: true,
                },
            );
            for r in 0..m {
                for j in 0..n {
                    let want = (plain[r * n + j] + row_bias[r]).max(0.0);
                    assert_eq!(got[r * n + j], want, "path {}", path.name());
                }
            }
        }
    }

    #[test]
    fn spmm_row_matches_dense_reference_on_all_paths() {
        let (k, n) = (7, 300); // n spans two SPMM blocks
        let b: Vec<i8> = (0..k * n).map(|i| det_i8(i, 255)).collect();
        let values: Vec<i8> = vec![3, -127, 64];
        let col_idx: Vec<u32> = vec![0, 3, 6];
        let mut want = vec![0.0f32; n];
        for j in 0..n {
            let mut acc = 0i32;
            for (v, &c) in values.iter().zip(&col_idx) {
                acc += *v as i32 * b[c as usize * n + j] as i32;
            }
            want[j] = (acc as f32 * 0.5 - 1.0).max(0.0);
        }
        for path in available_paths() {
            let mut got = vec![0.0f32; n];
            spmm_i8_row_with(
                path,
                &values,
                &col_idx,
                &b,
                n,
                &mut got,
                0.5,
                Some(-1.0),
                true,
            );
            assert_eq!(got, want, "path {}", path.name());
        }
    }
}
