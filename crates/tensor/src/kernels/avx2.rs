//! AVX2 microkernels (`x86_64` only).
//!
//! Every function here is `unsafe` with the same contract: **the caller
//! must have verified that the CPU supports AVX2** (and FMA for the
//! `_fma` variants) via `is_x86_feature_detected!` — the dispatch layer
//! in [`super`] is the only caller and does exactly that. Slice-length
//! invariants are `assert!`ed at entry, so every raw load/store below
//! is in bounds by construction.
//!
//! Bit-identity: the non-FMA kernels replay the scalar loops' exact
//! per-element operation sequence — same ascending-`kk` (or `-i`)
//! accumulation, separate `_mm256_mul_ps` + `_mm256_add_ps` (Rust never
//! enables floating-point contraction, so these are not silently fused)
//! — just eight elements per instruction. The `_fma` variants swap in
//! `_mm256_fmadd_ps`, which skips the intermediate rounding of `a*b`
//! and is therefore only approximately equal to scalar (see
//! `tests/kernel_parity.rs` for the ULP bound).

#![allow(unsafe_op_in_unsafe_fn)]

use super::{EpiBias, Epilogue, PANEL, ROW_BLOCK};
use crate::pool::Pool2dParams;
use std::arch::x86_64::*;

/// In-register epilogue hook applied between the final accumulate and
/// the store. The GEMM/GEMV bodies are generic over this trait and
/// monomorphized: the plain kernels instantiate [`NoEpi`], whose
/// `apply` is the identity, so the unfused instruction stream is
/// exactly what it was before fusion existed — no extra FP operations,
/// no runtime branches.
trait EpiApply: Copy {
    /// Fold bias/ReLU into `acc` for output row `row_abs` (absolute
    /// row index), columns `c0 .. c0 + width`.
    ///
    /// # Safety
    /// Caller must run with AVX2 enabled (these are `#[inline(always)]`
    /// helpers expanded inside `#[target_feature(enable = "avx2")]`
    /// kernels) and, for [`FusedEpi`], guarantee the bias-slice bounds
    /// checked by [`FusedEpi::from_epilogue`].
    unsafe fn apply(self, acc: __m256, row_abs: usize, c0: usize, width: usize) -> __m256;
}

/// Identity epilogue — the plain (unfused) kernels.
#[derive(Clone, Copy)]
struct NoEpi;

impl EpiApply for NoEpi {
    #[inline(always)]
    unsafe fn apply(self, acc: __m256, _row: usize, _c0: usize, _width: usize) -> __m256 {
        acc
    }
}

/// Bias + ReLU folded into the store. Exactly one of `row_bias` /
/// `col_bias` may be set (both `None` means ReLU-only fusion).
#[derive(Clone, Copy)]
struct FusedEpi<'a> {
    row_bias: Option<&'a [f32]>,
    col_bias: Option<&'a [f32]>,
    relu: bool,
}

impl<'a> FusedEpi<'a> {
    /// Split a dispatch-layer [`Epilogue`] into the per-store form,
    /// asserting bias bounds up front (`rows_needed` absolute rows for
    /// a per-row bias, `n` columns for a per-column bias) so every raw
    /// bias load in [`EpiApply::apply`] is in bounds by construction.
    fn from_epilogue(epi: Epilogue<'a>, rows_needed: usize, n: usize) -> Self {
        epi.check(rows_needed, n);
        let (row_bias, col_bias) = match epi.bias {
            Some(EpiBias::PerRow(b)) => (Some(b), None),
            Some(EpiBias::PerCol(b)) => (None, Some(b)),
            None => (None, None),
        };
        FusedEpi {
            row_bias,
            col_bias,
            relu: epi.relu,
        }
    }
}

impl EpiApply for FusedEpi<'_> {
    #[inline(always)]
    unsafe fn apply(self, mut acc: __m256, row_abs: usize, c0: usize, width: usize) -> __m256 {
        if let Some(b) = self.row_bias {
            acc = _mm256_add_ps(acc, _mm256_set1_ps(b[row_abs]));
        }
        if let Some(b) = self.col_bias {
            let bv = if width == PANEL {
                // In bounds: width == PANEL implies c0 + PANEL <= n,
                // and `from_epilogue` asserted b.len() >= n.
                _mm256_loadu_ps(b.as_ptr().add(c0))
            } else {
                // Partial-width tail panel: an 8-lane loadu from
                // b[c0..] could read past the bias slice, so stage
                // the valid lanes through a stack buffer.
                let mut tmp = [0.0f32; PANEL];
                tmp[..width].copy_from_slice(&b[c0..c0 + width]);
                _mm256_loadu_ps(tmp.as_ptr())
            };
            acc = _mm256_add_ps(acc, bv);
        }
        if self.relu {
            // `forward_into` ReLU semantics: lanes where acc > 0.0
            // keep acc; all others (negatives, -0.0, NaN) become +0.0.
            let pos = _mm256_cmp_ps(acc, _mm256_setzero_ps(), _CMP_GT_OQ);
            acc = _mm256_and_ps(acc, pos);
        }
        acc
    }
}

/// One multiply-accumulate step: `acc + a*b`, fused iff `FMA`.
/// With `FMA = false` this is the same two rounded operations the
/// scalar kernels perform, in the same order.
#[inline(always)]
unsafe fn madd<const FMA: bool>(a: __m256, b: __m256, acc: __m256) -> __m256 {
    if FMA {
        _mm256_fmadd_ps(a, b, acc)
    } else {
        _mm256_add_ps(acc, _mm256_mul_ps(a, b))
    }
}

/// Store a register to the (possibly partial-width) `width`-column slot
/// of an output row.
#[inline(always)]
unsafe fn store_panel(acc: __m256, row: &mut [f32], c0: usize, width: usize) {
    if width == PANEL {
        _mm256_storeu_ps(row.as_mut_ptr().add(c0), acc);
    } else {
        let mut tmp = [0.0f32; PANEL];
        _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
        row[c0..c0 + width].copy_from_slice(&tmp[..width]);
    }
}

/// One row band of the packed-panel GEMM, AVX2 mul+add (bit-identical
/// to [`super::scalar::gemm_packed_band`]).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_packed_band(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    gemm_band_body::<false, NoEpi>(a_data, k, n, b_data, c_band, row0, NoEpi)
}

/// [`gemm_packed_band`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemm_packed_band_fma(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    gemm_band_body::<true, NoEpi>(a_data, k, n, b_data, c_band, row0, NoEpi)
}

/// [`gemm_packed_band`] with a fused bias/ReLU epilogue applied
/// in-register before each store (see [`super::Epilogue`] for the
/// bit-identity argument).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_packed_band_fused(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: Epilogue<'_>,
) {
    let rows_here = c_band.len() / n.max(1);
    let fe = FusedEpi::from_epilogue(epi, row0 + rows_here, n);
    gemm_band_body::<false, FusedEpi>(a_data, k, n, b_data, c_band, row0, fe)
}

/// [`gemm_packed_band_fused`] with fused multiply-add (approximate
/// parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemm_packed_band_fused_fma(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: Epilogue<'_>,
) {
    let rows_here = c_band.len() / n.max(1);
    let fe = FusedEpi::from_epilogue(epi, row0 + rows_here, n);
    gemm_band_body::<true, FusedEpi>(a_data, k, n, b_data, c_band, row0, fe)
}

/// Shared band body; mirrors the scalar kernel's row/panel structure
/// with `__m256` registers replacing the `[f32; PANEL]` accumulators.
#[inline(always)]
unsafe fn gemm_band_body<const FMA: bool, E: EpiApply>(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: E,
) {
    let panels = n.div_ceil(PANEL);
    let rows_here = c_band.len() / n.max(1);
    // Entry invariants: every raw pointer below stays inside these
    // asserted slice bounds.
    assert!(a_data.len() >= (row0 + rows_here) * k);
    assert!(b_data.len() >= panels * k * PANEL);
    assert!(c_band.len() >= rows_here * n);

    // ROW_BLOCK output rows against panel *pairs*: 8 independent FMA
    // chains per `kk` step — enough to cover the 4-cycle add latency at
    // 2 issues/cycle, which a single-panel kernel (4 chains) cannot.
    // Each output element still accumulates in ascending-`kk` order,
    // exactly like the scalar kernel: widening the tile adds more
    // concurrent elements, it never reorders any one element's sum.
    let plen = k * PANEL;
    let mut local_r = 0;
    while local_r + ROW_BLOCK <= rows_here {
        let r = row0 + local_r;
        let ar0 = a_data.as_ptr().add(r * k);
        let ar1 = a_data.as_ptr().add((r + 1) * k);
        let ar2 = a_data.as_ptr().add((r + 2) * k);
        let ar3 = a_data.as_ptr().add((r + 3) * k);
        let mut p = 0;
        while p + 2 <= panels {
            let pn0 = b_data.as_ptr().add(p * plen);
            let pn1 = b_data.as_ptr().add((p + 1) * plen);
            let mut acc00 = _mm256_setzero_ps();
            let mut acc01 = _mm256_setzero_ps();
            let mut acc10 = _mm256_setzero_ps();
            let mut acc11 = _mm256_setzero_ps();
            let mut acc20 = _mm256_setzero_ps();
            let mut acc21 = _mm256_setzero_ps();
            let mut acc30 = _mm256_setzero_ps();
            let mut acc31 = _mm256_setzero_ps();
            for kk in 0..k {
                let pv0 = _mm256_loadu_ps(pn0.add(kk * PANEL));
                let pv1 = _mm256_loadu_ps(pn1.add(kk * PANEL));
                let a0 = _mm256_set1_ps(*ar0.add(kk));
                acc00 = madd::<FMA>(a0, pv0, acc00);
                acc01 = madd::<FMA>(a0, pv1, acc01);
                let a1 = _mm256_set1_ps(*ar1.add(kk));
                acc10 = madd::<FMA>(a1, pv0, acc10);
                acc11 = madd::<FMA>(a1, pv1, acc11);
                let a2 = _mm256_set1_ps(*ar2.add(kk));
                acc20 = madd::<FMA>(a2, pv0, acc20);
                acc21 = madd::<FMA>(a2, pv1, acc21);
                let a3 = _mm256_set1_ps(*ar3.add(kk));
                acc30 = madd::<FMA>(a3, pv0, acc30);
                acc31 = madd::<FMA>(a3, pv1, acc31);
            }
            let c0 = p * PANEL;
            let c1 = (p + 1) * PANEL;
            let width1 = PANEL.min(n - c1);
            for (i, (lo, hi)) in [
                (acc00, acc01),
                (acc10, acc11),
                (acc20, acc21),
                (acc30, acc31),
            ]
            .into_iter()
            .enumerate()
            {
                let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                let r_abs = row0 + local_r + i;
                store_panel(epi.apply(lo, r_abs, c0, PANEL), row, c0, PANEL);
                store_panel(epi.apply(hi, r_abs, c1, width1), row, c1, width1);
            }
            p += 2;
        }
        // Odd trailing panel: the original single-panel, 4-chain kernel.
        for p in p..panels {
            let panel = b_data.as_ptr().add(p * plen);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for kk in 0..k {
                let pv = _mm256_loadu_ps(panel.add(kk * PANEL));
                acc0 = madd::<FMA>(_mm256_set1_ps(*ar0.add(kk)), pv, acc0);
                acc1 = madd::<FMA>(_mm256_set1_ps(*ar1.add(kk)), pv, acc1);
                acc2 = madd::<FMA>(_mm256_set1_ps(*ar2.add(kk)), pv, acc2);
                acc3 = madd::<FMA>(_mm256_set1_ps(*ar3.add(kk)), pv, acc3);
            }
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            for (i, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let row = &mut c_band[(local_r + i) * n..(local_r + i + 1) * n];
                store_panel(
                    epi.apply(acc, row0 + local_r + i, c0, width),
                    row,
                    c0,
                    width,
                );
            }
        }
        local_r += ROW_BLOCK;
    }
    // Remaining rows one at a time through the dedicated GEMV body
    // (extracted from this loop, so the band result is unchanged).
    for local_r in local_r..rows_here {
        let r = row0 + local_r;
        gemv_row_body::<FMA, E>(
            a_data.as_ptr().add(r * k),
            k,
            n,
            b_data,
            &mut c_band[local_r * n..(local_r + 1) * n],
            r,
            epi,
        );
    }
}

/// One row-major matvec against the panel-packed `b_data`: the band
/// kernel's single-row trailing path, extracted so batch-1 inference
/// calls it directly. Four panels per pass — 32 live accumulator
/// lanes — while B streams through once. `row_abs` is the absolute
/// output-row index, used only by a fused per-row bias.
///
/// # Safety
/// Expanded inside `#[target_feature(enable = "avx2")]` callers only;
/// caller guarantees `a_row` points at `k` readable floats,
/// `b_data.len() >= n.div_ceil(PANEL) * k * PANEL` and
/// `c_row.len() >= n`.
#[inline(always)]
unsafe fn gemv_row_body<const FMA: bool, E: EpiApply>(
    a_row: *const f32,
    k: usize,
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    row_abs: usize,
    epi: E,
) {
    let panels = n.div_ceil(PANEL);
    let plen = k * PANEL;
    {
        let mut p = 0;
        while p + 4 <= panels {
            let pn0 = b_data.as_ptr().add(p * plen);
            let pn1 = b_data.as_ptr().add((p + 1) * plen);
            let pn2 = b_data.as_ptr().add((p + 2) * plen);
            let pn3 = b_data.as_ptr().add((p + 3) * plen);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for kk in 0..k {
                let av = _mm256_set1_ps(*a_row.add(kk));
                acc0 = madd::<FMA>(av, _mm256_loadu_ps(pn0.add(kk * PANEL)), acc0);
                acc1 = madd::<FMA>(av, _mm256_loadu_ps(pn1.add(kk * PANEL)), acc1);
                acc2 = madd::<FMA>(av, _mm256_loadu_ps(pn2.add(kk * PANEL)), acc2);
                acc3 = madd::<FMA>(av, _mm256_loadu_ps(pn3.add(kk * PANEL)), acc3);
            }
            for (i, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                let c0 = (p + i) * PANEL;
                let width = PANEL.min(n - c0);
                store_panel(epi.apply(acc, row_abs, c0, width), c_row, c0, width);
            }
            p += 4;
        }
        for p in p..panels {
            let panel = b_data.as_ptr().add(p * plen);
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let av = _mm256_set1_ps(*a_row.add(kk));
                acc = madd::<FMA>(av, _mm256_loadu_ps(panel.add(kk * PANEL)), acc);
            }
            let c0 = p * PANEL;
            let width = PANEL.min(n - c0);
            store_panel(epi.apply(acc, row_abs, c0, width), c_row, c0, width);
        }
    }
}

/// Entry checks shared by the public GEMV wrappers.
#[inline(always)]
fn gemv_entry_asserts(a_row: &[f32], n: usize, b_data: &[f32], c_row: &[f32]) {
    let panels = n.div_ceil(PANEL);
    // Entry invariants: every raw pointer in `gemv_row_body` stays
    // inside these asserted bounds.
    assert!(b_data.len() >= panels * a_row.len() * PANEL);
    assert!(c_row.len() >= n);
}

/// Row-major matvec against panel-packed B (`k = a_row.len()`), AVX2
/// mul+add — bit-identical to [`super::scalar::gemv_packed`].
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn gemv_packed(a_row: &[f32], n: usize, b_data: &[f32], c_row: &mut [f32]) {
    gemv_entry_asserts(a_row, n, b_data, c_row);
    gemv_row_body::<false, NoEpi>(a_row.as_ptr(), a_row.len(), n, b_data, c_row, 0, NoEpi)
}

/// [`gemv_packed`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemv_packed_fma(a_row: &[f32], n: usize, b_data: &[f32], c_row: &mut [f32]) {
    gemv_entry_asserts(a_row, n, b_data, c_row);
    gemv_row_body::<true, NoEpi>(a_row.as_ptr(), a_row.len(), n, b_data, c_row, 0, NoEpi)
}

/// [`gemv_packed`] with a fused bias/ReLU epilogue (a per-row bias
/// indexes entry 0 — the matvec output is row 0 of a `1×n` result).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn gemv_packed_fused(
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    epi: Epilogue<'_>,
) {
    gemv_entry_asserts(a_row, n, b_data, c_row);
    let fe = FusedEpi::from_epilogue(epi, 1, n);
    gemv_row_body::<false, FusedEpi>(a_row.as_ptr(), a_row.len(), n, b_data, c_row, 0, fe)
}

/// [`gemv_packed_fused`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemv_packed_fused_fma(
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    epi: Epilogue<'_>,
) {
    gemv_entry_asserts(a_row, n, b_data, c_row);
    let fe = FusedEpi::from_epilogue(epi, 1, n);
    gemv_row_body::<true, FusedEpi>(a_row.as_ptr(), a_row.len(), n, b_data, c_row, 0, fe)
}

/// One CSR row of sparse×dense, AVX2 mul+add (bit-identical to
/// [`super::scalar::spmm_row`]).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn spmm_row(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
) {
    spmm_row_body::<false>(values, col_idx, b_data, n, c_row, None, false)
}

/// [`spmm_row`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn spmm_row_fma(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
) {
    spmm_row_body::<true>(values, col_idx, b_data, n, c_row, None, false)
}

/// [`spmm_row`] with a fused scalar-bias/ReLU epilogue applied
/// in-register before each store (one CSR output row carries a single
/// bias value; `None` fuses ReLU alone, performing no bias add at all —
/// adding a literal `0.0` would not be bitwise neutral).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn spmm_row_fused(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    spmm_row_body::<false>(values, col_idx, b_data, n, c_row, bias, relu)
}

/// [`spmm_row_fused`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn spmm_row_fused_fma(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    spmm_row_body::<true>(values, col_idx, b_data, n, c_row, bias, relu)
}

/// Fold a fused scalar-bias/ReLU epilogue into one SpMM output
/// register. `(None, false)` performs no FP operations at all (the
/// unfused kernels pass those literals, which constant-fold away).
#[inline(always)]
unsafe fn spmm_epi(mut acc: __m256, bias: Option<f32>, relu: bool) -> __m256 {
    if let Some(b) = bias {
        acc = _mm256_add_ps(acc, _mm256_set1_ps(b));
    }
    if relu {
        let pos = _mm256_cmp_ps(acc, _mm256_setzero_ps(), _CMP_GT_OQ);
        acc = _mm256_and_ps(acc, pos);
    }
    acc
}

/// Shared SpMM row body: column-blocked (32 → 8 → scalar tail) so the
/// output stays in registers across the whole nonzero walk. Per output
/// element the nonzeros still accumulate in ascending-`i` order.
#[inline(always)]
unsafe fn spmm_row_body<const FMA: bool>(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    let nnz = values.len().min(col_idx.len());
    // Entry invariants for the raw loads below: every stored column
    // index addresses a full row of B, and the output row is n wide.
    assert!(c_row.len() >= n);
    assert!(col_idx[..nnz]
        .iter()
        .all(|&c| (c as usize + 1) * n <= b_data.len()));

    let bp = b_data.as_ptr();
    let mut j = 0;
    // 32-column blocks: 4 registers live across the nonzero walk.
    while j + 4 * PANEL <= n {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for i in 0..nnz {
            let v = _mm256_set1_ps(*values.get_unchecked(i));
            let row = bp.add(*col_idx.get_unchecked(i) as usize * n + j);
            acc0 = madd::<FMA>(v, _mm256_loadu_ps(row), acc0);
            acc1 = madd::<FMA>(v, _mm256_loadu_ps(row.add(PANEL)), acc1);
            acc2 = madd::<FMA>(v, _mm256_loadu_ps(row.add(2 * PANEL)), acc2);
            acc3 = madd::<FMA>(v, _mm256_loadu_ps(row.add(3 * PANEL)), acc3);
        }
        let cp = c_row.as_mut_ptr().add(j);
        _mm256_storeu_ps(cp, spmm_epi(acc0, bias, relu));
        _mm256_storeu_ps(cp.add(PANEL), spmm_epi(acc1, bias, relu));
        _mm256_storeu_ps(cp.add(2 * PANEL), spmm_epi(acc2, bias, relu));
        _mm256_storeu_ps(cp.add(3 * PANEL), spmm_epi(acc3, bias, relu));
        j += 4 * PANEL;
    }
    // 8-column blocks.
    while j + PANEL <= n {
        let mut acc = _mm256_setzero_ps();
        for i in 0..nnz {
            let v = _mm256_set1_ps(*values.get_unchecked(i));
            let row = bp.add(*col_idx.get_unchecked(i) as usize * n + j);
            acc = madd::<FMA>(v, _mm256_loadu_ps(row), acc);
        }
        _mm256_storeu_ps(c_row.as_mut_ptr().add(j), spmm_epi(acc, bias, relu));
        j += PANEL;
    }
    // Scalar tail: same ascending-`i` per-element accumulation.
    for jj in j..n {
        let mut acc = 0.0f32;
        for i in 0..nnz {
            acc += values.get_unchecked(i)
                * b_data.get_unchecked(*col_idx.get_unchecked(i) as usize * n + jj);
        }
        if let Some(b) = bias {
            acc += b;
        }
        if relu {
            acc = if acc > 0.0 { acc } else { 0.0 };
        }
        *c_row.get_unchecked_mut(jj) = acc;
    }
}

/// `c_row[j] += a * b_row[j]`, AVX2 mul+add.
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(c_row: &mut [f32], a: f32, b_row: &[f32]) {
    axpy_body::<false>(c_row, a, b_row)
}

/// [`axpy`] with fused multiply-add (approximate parity).
///
/// # Safety
/// CPU must support AVX2 and FMA (verified by the dispatch layer).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_fma(c_row: &mut [f32], a: f32, b_row: &[f32]) {
    axpy_body::<true>(c_row, a, b_row)
}

#[inline(always)]
unsafe fn axpy_body<const FMA: bool>(c_row: &mut [f32], a: f32, b_row: &[f32]) {
    let len = c_row.len().min(b_row.len());
    let av = _mm256_set1_ps(a);
    let cp = c_row.as_mut_ptr();
    let bp = b_row.as_ptr();
    let mut j = 0;
    // In bounds: j + PANEL <= len <= both slice lengths.
    while j + PANEL <= len {
        let c = _mm256_loadu_ps(cp.add(j));
        let b = _mm256_loadu_ps(bp.add(j));
        _mm256_storeu_ps(cp.add(j), madd::<FMA>(av, b, c));
        j += PANEL;
    }
    for j in j..len {
        *cp.add(j) += a * *bp.add(j);
    }
}

/// In-place ReLU: keeps the exact scalar semantics of
/// `if v < 0.0 { v = 0.0 }` — NaN and `-0.0` pass through unchanged —
/// by masking with a `<` compare instead of `_mm256_max_ps` (whose
/// NaN/`-0.0` behavior differs from the scalar branch).
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn relu_inplace(data: &mut [f32]) {
    let len = data.len();
    let p = data.as_mut_ptr();
    let zero = _mm256_setzero_ps();
    let mut j = 0;
    // In bounds: j + PANEL <= len.
    while j + PANEL <= len {
        let v = _mm256_loadu_ps(p.add(j));
        // lanes where v < 0.0 (ordered: NaN compares false, stays put)
        let neg = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
        _mm256_storeu_ps(p.add(j), _mm256_andnot_ps(neg, v));
        j += PANEL;
    }
    for j in j..len {
        let v = p.add(j);
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Out-of-place ReLU: scalar semantics of `if v > 0.0 { v } else { 0.0 }`
/// (NaN and `-0.0` flush to `+0.0`), via a `>` compare mask.
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn relu_into(src: &[f32], dst: &mut [f32]) {
    let len = src.len().min(dst.len());
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let zero = _mm256_setzero_ps();
    let mut j = 0;
    // In bounds: j + PANEL <= len <= both slice lengths.
    while j + PANEL <= len {
        let v = _mm256_loadu_ps(sp.add(j));
        // lanes where v > 0.0 keep v; all others (incl. NaN) become +0.0
        let pos = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(dp.add(j), _mm256_and_ps(v, pos));
        j += PANEL;
    }
    for j in j..len {
        let v = *sp.add(j);
        *dp.add(j) = if v > 0.0 { v } else { 0.0 };
    }
}

/// Broadcast-add a scalar bias.
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn bias_broadcast(data: &mut [f32], b: f32) {
    let len = data.len();
    let p = data.as_mut_ptr();
    let bv = _mm256_set1_ps(b);
    let mut j = 0;
    // In bounds: j + PANEL <= len.
    while j + PANEL <= len {
        let v = _mm256_loadu_ps(p.add(j));
        _mm256_storeu_ps(p.add(j), _mm256_add_ps(v, bv));
        j += PANEL;
    }
    for j in j..len {
        *p.add(j) += b;
    }
}

/// Pairwise `dst[i] += src[i]`.
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn vec_add(dst: &mut [f32], src: &[f32]) {
    let len = dst.len().min(src.len());
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut j = 0;
    // In bounds: j + PANEL <= len <= both slice lengths.
    while j + PANEL <= len {
        let d = _mm256_loadu_ps(dp.add(j));
        let s = _mm256_loadu_ps(sp.add(j));
        _mm256_storeu_ps(dp.add(j), _mm256_add_ps(d, s));
        j += PANEL;
    }
    for j in j..len {
        *dp.add(j) += *sp.add(j);
    }
}

/// One output row of 2-D max pooling.
///
/// Interior output columns — whose windows never clip the plane's
/// left/right edge — run eight-per-register, one output column per
/// lane; each lane replays the scalar cell's `(ky asc, kx asc)`
/// `>`-compare + select sequence, so tie-breaking (`-0.0`, NaN) is
/// bit-identical. Border columns take the scalar cell code.
///
/// # Safety
/// CPU must support AVX2 (verified by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn max_pool_row(
    plane: &[f32],
    h: usize,
    w: usize,
    params: &Pool2dParams,
    oy: usize,
    out_row: &mut [f32],
) {
    // Entry invariant for the raw window loads below.
    assert!(plane.len() >= h * w);
    let ow = out_row.len();
    let (k, pad, s) = (params.k, params.pad, params.stride);

    // Interior ox range: every window column in [0, w).
    //   ox*s - pad >= 0           =>  ox >= ceil(pad / s)
    //   ox*s - pad + k - 1 < w    =>  ox <= (w + pad - k) / s
    let lo = if s == 0 { ow } else { pad.div_ceil(s) };
    let hi = if s > 0 && w + pad >= k {
        ((w + pad - k) / s + 1).min(ow)
    } else {
        lo.min(ow)
    };
    let lo = lo.min(hi);

    // Valid window rows for this output row (uniform across ox, and a
    // contiguous range — no per-row allocation on this hot path):
    // iy = row_base + ky - pad must land in [0, h).
    let row_base = oy * s;
    let ky_lo = pad.saturating_sub(row_base);
    let ky_hi = (h + pad).saturating_sub(row_base).min(k);

    // Scalar left border.
    for (ox, o) in out_row.iter_mut().enumerate().take(lo) {
        *o = super::scalar::max_pool_cell(plane, h, w, params, oy, ox);
    }

    // SIMD interior: 8 output columns per register.
    let neg_inf = _mm256_set1_ps(f32::NEG_INFINITY);
    // Lane l reads input column base_ix + l*s.
    #[allow(clippy::cast_possible_truncation)]
    let vindex = _mm256_set_epi32(
        (7 * s) as i32,
        (6 * s) as i32,
        (5 * s) as i32,
        (4 * s) as i32,
        (3 * s) as i32,
        (2 * s) as i32,
        s as i32,
        0,
    );
    let pp = plane.as_ptr();
    let mut ox = lo;
    while ox + PANEL <= hi {
        let mut best = neg_inf;
        for ky in ky_lo..ky_hi {
            let iy = row_base + ky - pad; // ky range guarantees 0 <= iy < h
            for kx in 0..k {
                let base_ix = ox * s + kx - pad; // ox >= lo guarantees >= 0
                                                 // Furthest lane reads (ox+7)*s + kx - pad < w (ox+7 < hi).
                let row = pp.add(iy * w + base_ix);
                let v = if s == 1 {
                    _mm256_loadu_ps(row)
                } else {
                    _mm256_i32gather_ps::<4>(row, vindex)
                };
                // Scalar replay: `if v > best { best = v }` per lane
                // (NaN compares false and is ignored, like the scalar).
                let gt = _mm256_cmp_ps(v, best, _CMP_GT_OQ);
                best = _mm256_blendv_ps(best, v, gt);
            }
        }
        // Windows where nothing beat -inf (all cells -inf or NaN, or no
        // valid rows) yield 0.0, matching the scalar `hit` flag.
        let hit = _mm256_cmp_ps(best, neg_inf, _CMP_GT_OQ);
        _mm256_storeu_ps(out_row.as_mut_ptr().add(ox), _mm256_and_ps(best, hit));
        ox += PANEL;
    }

    // Scalar interior tail + right border.
    for (ox, o) in out_row.iter_mut().enumerate().skip(ox) {
        *o = super::scalar::max_pool_cell(plane, h, w, params, oy, ox);
    }
}
