//! Runtime-dispatched SIMD microkernels.
//!
//! Every hot inner loop of the crate — the packed-panel GEMM band, the
//! CSR sparse×dense row kernel, and the elementwise ReLU / bias /
//! max-pool loops — funnels through this module, which selects an
//! implementation **once per process** and hands the hot loops a
//! [`KernelPath`] they can carry by value:
//!
//! * [`KernelPath::Scalar`] — safe Rust, the portable fallback and the
//!   correctness oracle ([`scalar`]). Runs everywhere.
//! * [`KernelPath::Avx2`] — explicit AVX2 intrinsics
//!   ([`avx2`], `x86_64` only), eight `f32` lanes across the GEMM
//!   `PANEL` dimension. Uses separate multiply and add instructions in
//!   the **same per-element, ascending-`kk` order** as the scalar code,
//!   so results are **bit-identical** to [`KernelPath::Scalar`] — the
//!   parity guarantees of `run_batched` / `ParallelEngine` and the
//!   perf sentinel's strict counters keep holding whichever path runs.
//! * [`KernelPath::Avx2Fma`] — opt-in fused multiply-add variant.
//!   Fusion skips the intermediate rounding of `a*b`, so outputs are
//!   *more* accurate but only approximately equal to scalar (ULP-bounded;
//!   see `crates/tensor/tests/kernel_parity.rs`). Never selected by
//!   `auto` — it must be requested explicitly.
//!
//! Selection happens on first use and honors the `CAP_TENSOR_KERNEL`
//! environment variable: `auto` (default; AVX2 when the CPU has it,
//! scalar otherwise), `scalar`, `avx2`, or `avx2-fma`. Requesting a
//! path the host cannot run falls back to scalar — never an error, so
//! a binary built on an AVX2 machine still runs (and its tests still
//! pass, none skipped) on one without.
//!
//! The resolved path is published to the observability layer as the
//! `kernel_path` gauge (see `cap_obs::kernel_path_name`), so metric
//! snapshots, `ProfileReport`s and the perf sentinel all record which
//! backend produced their numbers.
//!
//! All `unsafe` in `cap-tensor` lives in this directory: the [`avx2`]
//! submodule (intrinsics) and the dispatch call sites below that enter
//! it, each with a safety comment tying the call to the CPU-feature
//! check that makes it sound.

pub mod int8;
pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

use crate::pool::Pool2dParams;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Column-panel width shared by [`crate::PackedB`] and the GEMM
/// microkernels: eight `f32` values — exactly one AVX2 `__m256` lane
/// group, and two SSE registers on the scalar/autovectorized path.
pub const PANEL: usize = 8;

/// Output rows register-blocked together by the packed GEMM band
/// kernel. `ROW_BLOCK * PANEL` accumulators stay live per panel pass —
/// enough independent multiply-add chains to cover FP latency.
pub const ROW_BLOCK: usize = 4;

/// Which axis of the output a fused bias broadcasts along.
#[derive(Debug, Clone, Copy)]
pub enum EpiBias<'a> {
    /// `bias[r]` is added to every element of output row `r` — the
    /// convolution flavor, where GEMM rows are output channels.
    PerRow(&'a [f32]),
    /// `bias[j]` is added to column `j` of every output row — the
    /// fully-connected flavor (`Y = X·Wᵀ`, columns are out features).
    PerCol(&'a [f32]),
}

/// A fused epilogue: optional bias add followed by an optional ReLU,
/// applied between the final accumulate and the store so the output
/// makes one memory round-trip instead of three.
///
/// The ReLU uses the `forward_into` semantics of [`relu_into_with`]
/// (`v > 0.0` keeps `v`; negatives, `-0.0` and NaN become `+0.0`), and
/// the bias add is the same single rounded `f32` addition the unfused
/// bias pass performs — so a fused kernel is **bitwise identical** to
/// the unfused kernel + bias pass + ReLU pass it replaces, on every
/// [`KernelPath`]. No epilogue operation is performed for `None`/
/// `false` fields (adding a literal `0.0` is *not* a no-op for NaN
/// payloads and `-0.0`, so absent parts are skipped, not zero-filled).
#[derive(Debug, Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Bias to fold into the store, if any.
    pub bias: Option<EpiBias<'a>>,
    /// Apply ReLU after the bias add.
    pub relu: bool,
}

impl Epilogue<'_> {
    /// The identity epilogue: fused entry points degrade to the plain
    /// kernel (same code path, zero extra floating-point operations).
    pub const NONE: Epilogue<'static> = Epilogue {
        bias: None,
        relu: false,
    };

    /// Whether this epilogue performs no work at all.
    pub fn is_noop(&self) -> bool {
        self.bias.is_none() && !self.relu
    }

    /// Assert the bias slice covers the output this epilogue will be
    /// applied to: `rows_needed` rows (absolute — `row0 + rows_here`
    /// for a band) for [`EpiBias::PerRow`], `n` columns for
    /// [`EpiBias::PerCol`]. Called at every fused kernel entry so the
    /// AVX2 raw bias loads are in bounds by construction.
    pub fn check(&self, rows_needed: usize, n: usize) {
        match self.bias {
            Some(EpiBias::PerRow(b)) => assert!(
                b.len() >= rows_needed,
                "per-row bias has {} entries, need {rows_needed}",
                b.len()
            ),
            Some(EpiBias::PerCol(b)) => assert!(
                b.len() >= n,
                "per-col bias has {} entries, need {n}",
                b.len()
            ),
            None => {}
        }
    }
}

/// Which microkernel implementation services the hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable safe-Rust loops. Always available; the parity oracle.
    Scalar,
    /// AVX2 mul+add intrinsics, bit-identical to [`KernelPath::Scalar`].
    Avx2,
    /// AVX2+FMA fused intrinsics — opt-in, approximate (ULP-bounded)
    /// parity with scalar.
    Avx2Fma,
}

impl KernelPath {
    /// Stable lower-case name (`scalar` / `avx2` / `avx2-fma`), as
    /// accepted by `CAP_TENSOR_KERNEL` and shown in reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Avx2 => "avx2",
            KernelPath::Avx2Fma => "avx2-fma",
        }
    }

    /// Numeric code published to the `kernel_path` metrics gauge.
    /// Matches [`cap_obs::kernel_path_name`]; `0` is reserved for
    /// "unset" (no kernel has run yet).
    pub fn code(self) -> u64 {
        match self {
            KernelPath::Scalar => 1,
            KernelPath::Avx2 => 2,
            KernelPath::Avx2Fma => 3,
        }
    }

    /// Whether this path promises bit-identical outputs to
    /// [`KernelPath::Scalar`] (everything except the fused-FMA mode).
    pub fn is_bit_identical_to_scalar(self) -> bool {
        !matches!(self, KernelPath::Avx2Fma)
    }

    /// Whether the current host can execute this path.
    pub fn is_available(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2Fma => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Every [`KernelPath`] the current host can execute, scalar first.
/// Parity tests iterate this list, so on a non-AVX2 host they compare
/// scalar against scalar and still pass — zero skipped tests.
pub fn available_paths() -> Vec<KernelPath> {
    [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx2Fma]
        .into_iter()
        .filter(|p| p.is_available())
        .collect()
}

/// Process-wide forced path: 0 = none, else `KernelPath::code()`.
/// Test/bench hook only — see [`force`].
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Cached resolution of `CAP_TENSOR_KERNEL` + CPU feature detection.
static SELECTED: OnceLock<KernelPath> = OnceLock::new();

/// Force every subsequent dispatch onto `path` (or back to the
/// automatic selection with `None`).
///
/// This is a **test and ablation hook**: parity suites and the
/// `kernels` experiment use it to run the same workload on two paths
/// inside one process. It is process-global, so concurrent tests that
/// depend on a *specific* path must serialize around it (results stay
/// correct either way — that is the parity guarantee — but a torn
/// override muddies which path produced them).
///
/// # Panics
/// If `path` is not available on this host ([`KernelPath::is_available`]).
pub fn force(path: Option<KernelPath>) {
    if let Some(p) = path {
        assert!(
            p.is_available(),
            "kernel path {} is not available on this host",
            p.name()
        );
    }
    FORCED.store(path.map_or(0, |p| p.code() as u8), Ordering::Relaxed);
}

/// Parse a `CAP_TENSOR_KERNEL` value. Unknown strings behave as `auto`
/// (never an error: a typo must not change numerical behavior, only
/// miss an optimization).
fn parse_env(value: &str) -> Option<KernelPath> {
    match value.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(KernelPath::Scalar),
        "avx2" => Some(KernelPath::Avx2),
        "avx2-fma" | "avx2fma" => Some(KernelPath::Avx2Fma),
        _ => None, // "", "auto", or anything unrecognized
    }
}

/// Resolve the startup selection: explicit request if available, else
/// the best bit-identical path the CPU supports (AVX2 or scalar).
fn resolve() -> KernelPath {
    let requested = std::env::var("CAP_TENSOR_KERNEL")
        .ok()
        .and_then(|v| parse_env(&v));
    let path = match requested {
        Some(p) if p.is_available() => p,
        Some(_) => KernelPath::Scalar, // requested but unavailable: clean fallback
        None => {
            // auto: fastest path that keeps bit-identity with scalar.
            if KernelPath::Avx2.is_available() {
                KernelPath::Avx2
            } else {
                KernelPath::Scalar
            }
        }
    };
    // Publish to the metrics registry so snapshots, profiles and the
    // sentinel record which backend produced their numbers.
    cap_obs::metrics().kernel_path.set(path.code());
    path
}

/// The kernel path servicing this process's hot loops.
///
/// Resolved once from `CAP_TENSOR_KERNEL` and CPU feature detection
/// (see module docs); after that a single relaxed atomic load plus a
/// cached read. Hot loops call this once per band/row and carry the
/// result by value.
///
/// ```
/// use cap_tensor::kernels;
/// let p = kernels::selected();
/// assert!(p.is_available());
/// ```
#[inline]
pub fn selected() -> KernelPath {
    match FORCED.load(Ordering::Relaxed) {
        1 => KernelPath::Scalar,
        2 => KernelPath::Avx2,
        3 => KernelPath::Avx2Fma,
        _ => *SELECTED.get_or_init(resolve),
    }
}

// ---------------------------------------------------------------------------
// Dispatching kernel entry points. Each has a `_with` variant taking an
// explicit path (tests force paths; hot loops hoist `selected()` out of
// their band/row loops) and a convenience wrapper using `selected()`.
// ---------------------------------------------------------------------------

/// One row band of the packed-panel GEMM: multiply rows
/// `row0 .. row0 + c_band.len()/n` of the `m×k` row-major `a_data`
/// against the panel-packed `b_data` (`n.div_ceil(PANEL)` panels of
/// `k × PANEL`), writing the `c_band` slice of the row-major output.
///
/// Accumulation is ascending-`kk` per output element on every path;
/// see [`KernelPath`] for the parity contract.
#[inline]
pub fn gemm_packed_band_with(
    path: KernelPath,
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    match path {
        KernelPath::Scalar => scalar::gemm_packed_band(a_data, k, n, b_data, c_band, row0),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2`/`Avx2Fma` are only ever produced by `selected()`
        // / `force()`, both of which verify via `is_available()` that the
        // CPU reports the avx2 (and fma) features the target_feature
        // functions require. Slice bounds are asserted inside the kernels.
        KernelPath::Avx2 => unsafe { avx2::gemm_packed_band(a_data, k, n, b_data, c_band, row0) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; `Avx2Fma` additionally implies the fma feature.
        KernelPath::Avx2Fma => unsafe {
            avx2::gemm_packed_band_fma(a_data, k, n, b_data, c_band, row0)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemm_packed_band(a_data, k, n, b_data, c_band, row0),
    }
}

/// [`gemm_packed_band_with`] on the process-selected path.
#[inline]
pub fn gemm_packed_band(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
) {
    gemm_packed_band_with(selected(), a_data, k, n, b_data, c_band, row0);
}

/// [`gemm_packed_band_with`] plus a fused [`Epilogue`] — bias add and
/// ReLU folded into the store, so the band makes one memory round-trip
/// instead of three. Bitwise identical to the unfused kernel followed
/// by separate bias and ReLU passes (see [`Epilogue`]).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_band_fused_with(
    path: KernelPath,
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: Epilogue<'_>,
) {
    if epi.is_noop() {
        // Degrade to the plain kernel: zero epilogue overhead, and
        // trivially the same instruction stream as before fusion.
        return gemm_packed_band_with(path, a_data, k, n, b_data, c_band, row0);
    }
    match path {
        KernelPath::Scalar => {
            scalar::gemm_packed_band_fused(a_data, k, n, b_data, c_band, row0, epi)
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`
        // (see `gemm_packed_band_with`); slice and bias-length bounds
        // are asserted inside the kernel before any raw load.
        KernelPath::Avx2 => unsafe {
            avx2::gemm_packed_band_fused(a_data, k, n, b_data, c_band, row0, epi)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe {
            avx2::gemm_packed_band_fused_fma(a_data, k, n, b_data, c_band, row0, epi)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemm_packed_band_fused(a_data, k, n, b_data, c_band, row0, epi),
    }
}

/// [`gemm_packed_band_fused_with`] on the process-selected path.
#[inline]
pub fn gemm_packed_band_fused(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_band: &mut [f32],
    row0: usize,
    epi: Epilogue<'_>,
) {
    gemm_packed_band_fused_with(selected(), a_data, k, n, b_data, c_band, row0, epi);
}

/// Row-major matvec against a panel-packed B: `c_row[..n] = a_row · B`
/// with `k = a_row.len()` and `b_data` holding `n.div_ceil(PANEL)`
/// panels of `k × PANEL` — the batch-1 shape of the packed GEMM,
/// streamed through a kernel built for a lone row (four panels × eight
/// lanes of live accumulators; B read exactly once).
///
/// This is the band kernel's own trailing single-row path, extracted:
/// outputs are bit-identical to [`gemm_packed_band_with`] on a 1-row
/// band, on every path.
#[inline]
pub fn gemv_packed_with(
    path: KernelPath,
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
) {
    match path {
        KernelPath::Scalar => scalar::gemv_packed(a_row, n, b_data, c_row),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`;
        // bounds asserted in the kernel.
        KernelPath::Avx2 => unsafe { avx2::gemv_packed(a_row, n, b_data, c_row) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe { avx2::gemv_packed_fma(a_row, n, b_data, c_row) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemv_packed(a_row, n, b_data, c_row),
    }
}

/// [`gemv_packed_with`] on the process-selected path.
#[inline]
pub fn gemv_packed(a_row: &[f32], n: usize, b_data: &[f32], c_row: &mut [f32]) {
    gemv_packed_with(selected(), a_row, n, b_data, c_row);
}

/// [`gemv_packed_with`] plus a fused [`Epilogue`]. A per-row bias
/// indexes entry 0 (the matvec result is row 0 of a `1×n` output).
#[inline]
pub fn gemv_packed_fused_with(
    path: KernelPath,
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    epi: Epilogue<'_>,
) {
    if epi.is_noop() {
        // Degrade to the plain kernel (see `gemm_packed_band_fused_with`).
        return gemv_packed_with(path, a_row, n, b_data, c_row);
    }
    match path {
        KernelPath::Scalar => scalar::gemv_packed_fused(a_row, n, b_data, c_row, epi),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`;
        // slice and bias-length bounds asserted in the kernel.
        KernelPath::Avx2 => unsafe { avx2::gemv_packed_fused(a_row, n, b_data, c_row, epi) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe { avx2::gemv_packed_fused_fma(a_row, n, b_data, c_row, epi) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::gemv_packed_fused(a_row, n, b_data, c_row, epi),
    }
}

/// [`gemv_packed_fused_with`] on the process-selected path.
#[inline]
pub fn gemv_packed_fused(
    a_row: &[f32],
    n: usize,
    b_data: &[f32],
    c_row: &mut [f32],
    epi: Epilogue<'_>,
) {
    gemv_packed_fused_with(selected(), a_row, n, b_data, c_row, epi);
}

/// One CSR row of sparse×dense: `c_row = Σ_i values[i] * B[col_idx[i], :]`
/// over the `k×n` row-major `b_data`. `c_row` is overwritten (not
/// accumulated into). Ascending-`i` accumulation per output element on
/// every path.
#[inline]
pub fn spmm_row_with(
    path: KernelPath,
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
) {
    match path {
        KernelPath::Scalar => scalar::spmm_row(values, col_idx, b_data, n, c_row),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`
        // (see `gemm_packed_band_with`); bounds asserted in the kernel.
        KernelPath::Avx2 => unsafe { avx2::spmm_row(values, col_idx, b_data, n, c_row) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe { avx2::spmm_row_fma(values, col_idx, b_data, n, c_row) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::spmm_row(values, col_idx, b_data, n, c_row),
    }
}

/// [`spmm_row_with`] on the process-selected path.
#[inline]
pub fn spmm_row(values: &[f32], col_idx: &[u32], b_data: &[f32], n: usize, c_row: &mut [f32]) {
    spmm_row_with(selected(), values, col_idx, b_data, n, c_row);
}

/// [`spmm_row_with`] plus a fused scalar-bias/ReLU epilogue. One CSR
/// output row has a single bias value (its output channel / feature),
/// so the epilogue here is `(Option<f32>, bool)` rather than an
/// [`Epilogue`]; `None` fuses ReLU alone without a bias add. Bias adds
/// first, then the `forward_into`-flavor ReLU; bitwise identical to
/// the unfused kernel + bias pass + ReLU pass.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn spmm_row_fused_with(
    path: KernelPath,
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    if bias.is_none() && !relu {
        // Degrade to the plain kernel (see `gemm_packed_band_fused_with`).
        return spmm_row_with(path, values, col_idx, b_data, n, c_row);
    }
    match path {
        KernelPath::Scalar => scalar::spmm_row_fused(values, col_idx, b_data, n, c_row, bias, relu),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`;
        // bounds asserted in the kernel.
        KernelPath::Avx2 => unsafe {
            avx2::spmm_row_fused(values, col_idx, b_data, n, c_row, bias, relu)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe {
            avx2::spmm_row_fused_fma(values, col_idx, b_data, n, c_row, bias, relu)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::spmm_row_fused(values, col_idx, b_data, n, c_row, bias, relu),
    }
}

/// [`spmm_row_fused_with`] on the process-selected path.
#[inline]
pub fn spmm_row_fused(
    values: &[f32],
    col_idx: &[u32],
    b_data: &[f32],
    n: usize,
    c_row: &mut [f32],
    bias: Option<f32>,
    relu: bool,
) {
    spmm_row_fused_with(selected(), values, col_idx, b_data, n, c_row, bias, relu);
}

/// Sparse matvec dot — one CSR row against a dense vector:
/// `Σ_i values[i] * x[col_idx[i]]`, ascending `i`.
///
/// Every kernel path shares the scalar body: a single ascending-order
/// dot product cannot be lane-split without reordering the summation,
/// which would break the bit-identity contract — and batch-1 sparse FC
/// is bandwidth-bound, so the matvec win comes from eliminating the
/// transpose/allocation round-trips, not from SIMD lanes.
#[inline]
pub fn spmv(values: &[f32], col_idx: &[u32], x: &[f32]) -> f32 {
    scalar::spmv(values, col_idx, x)
}

/// [`spmv`] with a fused bias/ReLU epilogue (same path story; `None`
/// skips the bias add entirely).
#[inline]
pub fn spmv_fused(
    values: &[f32],
    col_idx: &[u32],
    x: &[f32],
    bias: Option<f32>,
    relu: bool,
) -> f32 {
    scalar::spmv_fused(values, col_idx, x, bias, relu)
}

/// `c_row[j] += a * b_row[j]` over `min(c_row.len(), b_row.len())`
/// elements — the inner loop of the unpacked GEMM and of dense bias
/// broadcasts over columns.
#[inline]
pub fn axpy_with(path: KernelPath, c_row: &mut [f32], a: f32, b_row: &[f32]) {
    match path {
        KernelPath::Scalar => scalar::axpy(c_row, a, b_row),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`.
        KernelPath::Avx2 => unsafe { avx2::axpy(c_row, a, b_row) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above, plus fma.
        KernelPath::Avx2Fma => unsafe { avx2::axpy_fma(c_row, a, b_row) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy(c_row, a, b_row),
    }
}

/// [`axpy_with`] on the process-selected path.
#[inline]
pub fn axpy(c_row: &mut [f32], a: f32, b_row: &[f32]) {
    axpy_with(selected(), c_row, a, b_row);
}

/// In-place ReLU: `v = if v < 0.0 { 0.0 } else { v }`. Preserves NaN
/// and `-0.0` exactly like the scalar comparison does (the AVX2 path
/// uses compare+mask, not `max`, for bit-identity).
#[inline]
pub fn relu_inplace_with(path: KernelPath, data: &mut [f32]) {
    match path {
        KernelPath::Scalar => scalar::relu_inplace(data),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe { avx2::relu_inplace(data) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::relu_inplace(data),
    }
}

/// [`relu_inplace_with`] on the process-selected path.
#[inline]
pub fn relu_inplace(data: &mut [f32]) {
    relu_inplace_with(selected(), data);
}

/// Out-of-place ReLU: `dst[i] = if src[i] > 0.0 { src[i] } else { 0.0 }`
/// (the `forward_into` flavor: NaN and `-0.0` map to `+0.0`, matching
/// the scalar ternary).
#[inline]
pub fn relu_into_with(path: KernelPath, src: &[f32], dst: &mut [f32]) {
    match path {
        KernelPath::Scalar => scalar::relu_into(src, dst),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe { avx2::relu_into(src, dst) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::relu_into(src, dst),
    }
}

/// [`relu_into_with`] on the process-selected path.
#[inline]
pub fn relu_into(src: &[f32], dst: &mut [f32]) {
    relu_into_with(selected(), src, dst);
}

/// Broadcast-add a scalar bias: `v += b` for every element.
#[inline]
pub fn bias_broadcast_with(path: KernelPath, data: &mut [f32], b: f32) {
    match path {
        KernelPath::Scalar => scalar::bias_broadcast(data, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe { avx2::bias_broadcast(data, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::bias_broadcast(data, b),
    }
}

/// [`bias_broadcast_with`] on the process-selected path.
#[inline]
pub fn bias_broadcast(data: &mut [f32], b: f32) {
    bias_broadcast_with(selected(), data, b);
}

/// Pairwise add: `dst[i] += src[i]` over `min(dst.len(), src.len())`
/// elements — the fully-connected layer's per-row bias add.
#[inline]
pub fn vec_add_with(path: KernelPath, dst: &mut [f32], src: &[f32]) {
    match path {
        KernelPath::Scalar => scalar::vec_add(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe { avx2::vec_add(dst, src) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::vec_add(dst, src),
    }
}

/// [`vec_add_with`] on the process-selected path.
#[inline]
pub fn vec_add(dst: &mut [f32], src: &[f32]) {
    vec_add_with(selected(), dst, src);
}

/// One output row of 2-D max pooling over a single `h×w` input plane:
/// fills `out_row` (length `ow`) for output row `oy`. Padding cells
/// never win (treated as `-inf`); an all-padding window yields `0.0`.
///
/// The AVX2 path assigns one output column per lane and replays the
/// scalar cell's exact `(ky asc, kx asc)` compare sequence per lane,
/// so `-0.0`/NaN tie-breaking is bit-identical; window positions that
/// clip the plane's left/right edge always take the scalar cell code.
#[inline]
pub fn max_pool_row_with(
    path: KernelPath,
    plane: &[f32],
    h: usize,
    w: usize,
    params: &Pool2dParams,
    oy: usize,
    out_row: &mut [f32],
) {
    match path {
        KernelPath::Scalar => scalar::max_pool_row(plane, h, w, params, oy, out_row),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: avx2 verified available by `selected()`/`force()`;
        // the kernel asserts `plane.len() >= h*w` before any raw load.
        KernelPath::Avx2 | KernelPath::Avx2Fma => unsafe {
            avx2::max_pool_row(plane, h, w, params, oy, out_row)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::max_pool_row(plane, h, w, params, oy, out_row),
    }
}

/// [`max_pool_row_with`] on the process-selected path.
#[inline]
pub fn max_pool_row(
    plane: &[f32],
    h: usize,
    w: usize,
    params: &Pool2dParams,
    oy: usize,
    out_row: &mut [f32],
) {
    max_pool_row_with(selected(), plane, h, w, params, oy, out_row);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_codes_are_stable() {
        assert_eq!(KernelPath::Scalar.name(), "scalar");
        assert_eq!(KernelPath::Avx2.name(), "avx2");
        assert_eq!(KernelPath::Avx2Fma.name(), "avx2-fma");
        for p in [KernelPath::Scalar, KernelPath::Avx2, KernelPath::Avx2Fma] {
            // The obs-side label table must agree with our codes.
            assert_eq!(cap_obs::kernel_path_name(p.code()), p.name());
        }
        assert_eq!(cap_obs::kernel_path_name(0), "unset");
    }

    #[test]
    fn parse_env_values() {
        assert_eq!(parse_env("scalar"), Some(KernelPath::Scalar));
        assert_eq!(parse_env("AVX2"), Some(KernelPath::Avx2));
        assert_eq!(parse_env("avx2-fma"), Some(KernelPath::Avx2Fma));
        assert_eq!(parse_env("avx2fma"), Some(KernelPath::Avx2Fma));
        assert_eq!(parse_env("auto"), None);
        assert_eq!(parse_env(""), None);
        assert_eq!(parse_env("riscv-vector"), None);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelPath::Scalar.is_available());
        assert!(available_paths().contains(&KernelPath::Scalar));
        assert!(available_paths()[0] == KernelPath::Scalar);
    }

    #[test]
    fn selected_is_available_and_bit_identical_by_default() {
        let p = selected();
        assert!(p.is_available());
        // `auto` (and any CAP_TENSOR_KERNEL except avx2-fma) must keep
        // the bit-identity contract.
        if std::env::var("CAP_TENSOR_KERNEL").map(|v| parse_env(&v))
            != Ok(Some(KernelPath::Avx2Fma))
        {
            assert!(p.is_bit_identical_to_scalar());
        }
    }

    #[test]
    fn force_overrides_and_restores() {
        force(Some(KernelPath::Scalar));
        assert_eq!(selected(), KernelPath::Scalar);
        force(None);
        assert!(selected().is_available());
    }
}
