//! Blocked, rayon-parallel dense GEMM.
//!
//! `C = A * B` with `A: m×k`, `B: k×n`, `C: m×n`. The kernel splits `C`
//! into row bands that are computed in parallel (each output row is owned
//! by exactly one task, so the result is deterministic), and uses a
//! k-blocked inner loop with a column-contiguous accumulation over `B`
//! rows, which vectorizes well.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use rayon::prelude::*;

/// Row-band size for parallel splitting. One band is one rayon task.
const ROW_BAND: usize = 32;

/// Block size along the shared `k` dimension (cache blocking).
const K_BLOCK: usize = 256;

/// Multiply two dense matrices, returning a freshly allocated result.
pub fn gemm(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_prealloc(a, b, &mut c)?;
    Ok(c)
}

/// Multiply two dense matrices into a preallocated output.
///
/// `c` must already have shape `(a.rows, b.cols)`; its prior contents are
/// overwritten. Reusing `c` across calls avoids allocator traffic in hot
/// inference loops.
pub fn gemm_prealloc(a: &Matrix, b: &Matrix, c: &mut Matrix) -> TensorResult<()> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(ShapeError::new(format!(
            "gemm: inner dims {}x{} * {}x{}",
            m, ka, kb, n
        )));
    }
    if c.shape() != (m, n) {
        return Err(ShapeError::new(format!(
            "gemm: output {:?}, expected {:?}",
            c.shape(),
            (m, n)
        )));
    }
    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();

    // Parallelize over disjoint row bands of C.
    c_data
        .par_chunks_mut(ROW_BAND * n)
        .enumerate()
        .for_each(|(band, c_band)| {
            let row0 = band * ROW_BAND;
            let rows_here = c_band.len() / n.max(1);
            c_band.fill(0.0);
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + K_BLOCK).min(k);
                for local_r in 0..rows_here {
                    let r = row0 + local_r;
                    let a_row = &a_data[r * k..(r + 1) * k];
                    let c_row = &mut c_band[local_r * n..(local_r + 1) * n];
                    for kk in k0..k1 {
                        let aik = a_row[kk];
                        if aik == 0.0 {
                            continue; // skip zero weights: cheap sparsity win
                        }
                        let b_row = &b_data[kk * n..(kk + 1) * n];
                        for (cv, bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
                k0 = k1;
            }
        });
    Ok(())
}

/// Naive triple-loop GEMM used as a correctness oracle in tests and as the
/// baseline in the `conv_strategy` ablation bench.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(ShapeError::new(format!(
            "gemm_naive: inner dims {}x{} * {}x{}",
            m, ka, kb, n
        )));
    }
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        for kk in 0..ka {
            let aik = a.get(r, kk);
            for cc in 0..n {
                let v = c.get(r, cc) + aik * b.get(kk, cc);
                c.set(r, cc, v);
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple deterministic fill; values small enough to avoid f32 blowup.
        Matrix::from_fn(rows, cols, |r, c| {
            let h = r
                .wrapping_mul(31)
                .wrapping_add(c.wrapping_mul(17))
                .wrapping_add(seed as usize);
            ((h % 13) as f32 - 6.0) / 6.0
        })
    }

    #[test]
    fn identity_left() {
        let b = mat(4, 5, 1);
        let i = Matrix::identity(4);
        let c = gemm(&i, &b).unwrap();
        assert!(c.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn identity_right() {
        let a = mat(4, 5, 2);
        let i = Matrix::identity(5);
        let c = gemm(&a, &i).unwrap();
        assert!(c.max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn matches_naive_rectangular() {
        let a = mat(37, 19, 3);
        let b = mat(19, 53, 4);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn matches_naive_large_enough_for_multiple_bands() {
        let a = mat(100, 70, 5);
        let b = mat(70, 40, 6);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn prealloc_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(gemm_prealloc(&a, &b, &mut c).is_err());
    }

    #[test]
    fn prealloc_overwrites_stale_contents() {
        let a = Matrix::identity(3);
        let b = mat(3, 3, 7);
        let mut c = Matrix::full(3, 3, 99.0);
        gemm_prealloc(&a, &b, &mut c).unwrap();
        assert!(c.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn zero_sized_dims() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 4));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn prop_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(1));
            let fast = gemm(&a, &b).unwrap();
            let slow = gemm_naive(&a, &b).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }

        #[test]
        fn prop_distributes_over_addition(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..500) {
            // A*(B1+B2) == A*B1 + A*B2
            let a = mat(m, k, seed);
            let b1 = mat(k, n, seed.wrapping_add(10));
            let b2 = mat(k, n, seed.wrapping_add(20));
            let mut bsum = b1.clone();
            bsum.axpy(1.0, &b2).unwrap();
            let lhs = gemm(&a, &bsum).unwrap();
            let mut rhs = gemm(&a, &b1).unwrap();
            rhs.axpy(1.0, &gemm(&a, &b2).unwrap()).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
