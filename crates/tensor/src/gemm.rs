//! Blocked, rayon-parallel dense GEMM.
//!
//! `C = A * B` with `A: m×k`, `B: k×n`, `C: m×n`. The kernel splits `C`
//! into row bands that are computed in parallel (each output row is owned
//! by exactly one task, so the result is deterministic), and uses a
//! k-blocked inner loop with a column-contiguous accumulation over `B`
//! rows, which vectorizes well.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::kernels;
use crate::kernels::{EpiBias, Epilogue, PANEL};
use rayon::prelude::*;

/// Row-band size for parallel splitting. One band is one rayon task.
const ROW_BAND: usize = 32;

/// Columns per parallel chunk on the batch-1 (`m == 1`) GEMV route. A
/// multiple of `PANEL` so chunk boundaries align with packed panels;
/// 32 panels ≈ one L1-resident output stripe per task.
const GEMV_COL_CHUNK: usize = 32 * PANEL;

/// Block size along the shared `k` dimension (cache blocking).
const K_BLOCK: usize = 256;

/// Minimum zero fraction in an `A` row block before the zero-skip branch
/// pays for itself (1/8 = 12.5%; below that the branch just stalls the
/// pipeline on dense data).
const SKIP_NUMER: usize = 1;
const SKIP_DENOM: usize = 8;

/// Multiply two dense matrices, returning a freshly allocated result.
pub fn gemm(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_prealloc(a, b, &mut c)?;
    Ok(c)
}

/// Multiply two dense matrices into a preallocated output.
///
/// `c` must already have shape `(a.rows, b.cols)`; its prior contents are
/// overwritten. Reusing `c` across calls avoids allocator traffic in hot
/// inference loops.
pub fn gemm_prealloc(a: &Matrix, b: &Matrix, c: &mut Matrix) -> TensorResult<()> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(ShapeError::new(format!(
            "gemm: inner dims {}x{} * {}x{}",
            m, ka, kb, n
        )));
    }
    if c.shape() != (m, n) {
        return Err(ShapeError::new(format!(
            "gemm: output {:?}, expected {:?}",
            c.shape(),
            (m, n)
        )));
    }
    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let c_data = c.as_mut_slice();
    // Resolve the kernel path once, outside the parallel loop, and pass
    // it by value into the band tasks (worker threads must not re-read
    // process-global dispatch state mid-operation).
    let path = kernels::selected();

    // Parallelize over disjoint row bands of C.
    c_data
        .par_chunks_mut(ROW_BAND * n)
        .enumerate()
        .for_each(|(band, c_band)| {
            let row0 = band * ROW_BAND;
            let rows_here = c_band.len() / n.max(1);
            c_band.fill(0.0);
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + K_BLOCK).min(k);
                for local_r in 0..rows_here {
                    let r = row0 + local_r;
                    let a_row = &a_data[r * k..(r + 1) * k];
                    let c_row = &mut c_band[local_r * n..(local_r + 1) * n];
                    let a_blk = &a_row[k0..k1];
                    // Cheap density probe: O(k_block) against an inner loop
                    // of O(k_block * n). Only pay the per-element zero-skip
                    // branch when this row block actually carries zeros
                    // (pruned weights); dense rows take the branch-free
                    // loop, which the compiler vectorizes cleanly.
                    let zeros = a_blk.iter().filter(|&&v| v == 0.0).count();
                    if zeros * SKIP_DENOM >= a_blk.len() * SKIP_NUMER {
                        for (kk, &aik) in a_blk.iter().enumerate() {
                            if aik == 0.0 {
                                continue; // skip zero weights: sparsity win
                            }
                            let b_row = &b_data[(k0 + kk) * n..(k0 + kk + 1) * n];
                            kernels::axpy_with(path, c_row, aik, b_row);
                        }
                    } else {
                        for (kk, &aik) in a_blk.iter().enumerate() {
                            let b_row = &b_data[(k0 + kk) * n..(k0 + kk + 1) * n];
                            kernels::axpy_with(path, c_row, aik, b_row);
                        }
                    }
                }
                k0 = k1;
            }
        });
    Ok(())
}

/// `B` pre-packed into column panels for repeated multiplication.
///
/// When one weight matrix multiplies many activation panels (every
/// steady-state inference loop), the row-major walk over `B` in
/// [`gemm_prealloc`] touches `n`-strided cache lines per `k` step. Packing
/// `B` once into `PANEL`-column blocks — each stored `k × PANEL`
/// contiguous, tail zero-padded — turns the inner loop into a fixed-width
/// register-blocked accumulation over a linear stream.
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    /// Panel-major storage: panel `p` occupies
    /// `data[p*k*PANEL .. (p+1)*k*PANEL]`, row-major `k × PANEL`.
    data: Vec<f32>,
}

impl PackedB {
    /// Pack a `k × n` matrix.
    pub fn pack(b: &Matrix) -> Self {
        let (k, n) = b.shape();
        let panels = n.div_ceil(PANEL);
        let mut data = vec![0.0f32; panels * k * PANEL];
        pack_panels(b.as_slice(), k, n, &mut data);
        Self { k, n, data }
    }

    /// Logical `(k, n)` shape of the packed matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }
}

/// Copy a row-major `k × n` slice into `PANEL`-column panel layout.
fn pack_panels(b_data: &[f32], k: usize, n: usize, dst: &mut [f32]) {
    let panels = n.div_ceil(PANEL);
    for p in 0..panels {
        let c0 = p * PANEL;
        let width = PANEL.min(n - c0);
        let base = p * k * PANEL;
        for kk in 0..k {
            let src = &b_data[kk * n + c0..kk * n + c0 + width];
            dst[base + kk * PANEL..base + kk * PANEL + width].copy_from_slice(src);
        }
    }
}

/// Pack a row-major `k × n` slice into panel layout inside a reusable
/// scratch matrix (resized in place, capacity kept across calls).
///
/// This is the per-call sibling of [`PackedB::pack`] for `B` operands
/// that change every call — e.g. a convolution's im2col column matrix —
/// where the O(k·n) copy is amortized against the O(m·k·n) multiply
/// that follows via [`gemm_packed_cols`].
pub fn pack_b_slice_into(b_data: &[f32], k: usize, n: usize, dst: &mut Matrix) {
    let panels = n.div_ceil(PANEL);
    dst.resize(panels.max(1), k * PANEL);
    if panels > 0 {
        pack_panels(b_data, k, n, dst.as_mut_slice());
    }
}

/// GEMM against a `B` packed by [`pack_b_slice_into`].
///
/// `a_data` is `m × k` row-major, `packed_b` holds `n.div_ceil(PANEL)`
/// panels of `k × PANEL`, `c_data` is `m × n` row-major. Identical
/// accumulation order to [`gemm_prealloc`], so results are bit-equal.
pub fn gemm_packed_cols(
    a_data: &[f32],
    m: usize,
    k: usize,
    n: usize,
    packed_b: &[f32],
    c_data: &mut [f32],
) -> TensorResult<()> {
    if a_data.len() != m * k {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: A length {} != {}x{}",
            a_data.len(),
            m,
            k
        )));
    }
    if c_data.len() != m * n {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: C length {} != {}x{}",
            c_data.len(),
            m,
            n
        )));
    }
    if packed_b.len() < n.div_ceil(PANEL) * k * PANEL {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: packed B length {} < {} panels of {}x{}",
            packed_b.len(),
            n.div_ceil(PANEL),
            k,
            PANEL
        )));
    }
    gemm_packed_core(a_data, k, n, packed_b, c_data);
    Ok(())
}

/// Multiply `A` by a pre-packed `B` into a preallocated output.
///
/// Semantically identical to [`gemm_prealloc`] (same `kk`-ascending
/// accumulation order per output element), but reads `B` as contiguous
/// panels. Use when the same `B` is multiplied many times — the packing
/// cost is amortized across calls.
///
/// ```
/// use cap_tensor::{gemm, gemm_prepacked, Matrix, PackedB};
///
/// let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
/// let b = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.5);
/// let packed = PackedB::pack(&b); // once, up front
///
/// let mut c = Matrix::zeros(3, 5);
/// gemm_prepacked(&a, &packed, &mut c).unwrap(); // many times
///
/// // Bit-exact against the unpacked kernel, not merely close:
/// assert_eq!(c.as_slice(), gemm(&a, &b).unwrap().as_slice());
/// ```
pub fn gemm_prepacked(a: &Matrix, b: &PackedB, c: &mut Matrix) -> TensorResult<()> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: inner dims {}x{} * {}x{}",
            m, ka, kb, n
        )));
    }
    if c.shape() != (m, n) {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: output {:?}, expected {:?}",
            c.shape(),
            (m, n)
        )));
    }
    gemm_prepacked_slice(a.as_slice(), m, b, c.as_mut_slice())
}

/// [`gemm_prepacked`] over raw row-major slices.
///
/// `a` is `m × b.k` row-major, `c` is `m × b.n` row-major. Lets callers
/// whose data lives in other containers (e.g. an NCHW `Tensor4` whose
/// flattened images are already row-major feature rows) multiply without
/// copying into a `Matrix` first.
pub fn gemm_prepacked_slice(
    a_data: &[f32],
    m: usize,
    b: &PackedB,
    c_data: &mut [f32],
) -> TensorResult<()> {
    let (k, n) = b.shape();
    if a_data.len() != m * k {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: A length {} != {}x{}",
            a_data.len(),
            m,
            k
        )));
    }
    if c_data.len() != m * n {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: C length {} != {}x{}",
            c_data.len(),
            m,
            n
        )));
    }
    gemm_packed_core(a_data, k, n, &b.data, c_data);
    Ok(())
}

/// [`gemm_packed_cols`] plus a fused [`Epilogue`] (bias/ReLU folded
/// into the store — see [`crate::kernels::Epilogue`] for the bitwise
/// contract). The convolution layers use this to fuse their per-channel
/// bias and a following ReLU into the GEMM itself.
pub fn gemm_packed_cols_fused(
    a_data: &[f32],
    m: usize,
    k: usize,
    n: usize,
    packed_b: &[f32],
    c_data: &mut [f32],
    epi: Epilogue<'_>,
) -> TensorResult<()> {
    if a_data.len() != m * k {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: A length {} != {}x{}",
            a_data.len(),
            m,
            k
        )));
    }
    if c_data.len() != m * n {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: C length {} != {}x{}",
            c_data.len(),
            m,
            n
        )));
    }
    if packed_b.len() < n.div_ceil(PANEL) * k * PANEL {
        return Err(ShapeError::new(format!(
            "gemm_packed_cols: packed B length {} < {} panels of {}x{}",
            packed_b.len(),
            n.div_ceil(PANEL),
            k,
            PANEL
        )));
    }
    gemm_packed_core_fused(a_data, k, n, packed_b, c_data, epi);
    Ok(())
}

/// [`gemm_prepacked_slice`] plus a fused [`Epilogue`] — the
/// fully-connected layer's route for folding its per-output-column
/// bias and a following ReLU into the GEMM/GEMV store.
pub fn gemm_prepacked_slice_fused(
    a_data: &[f32],
    m: usize,
    b: &PackedB,
    c_data: &mut [f32],
    epi: Epilogue<'_>,
) -> TensorResult<()> {
    let (k, n) = b.shape();
    if a_data.len() != m * k {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: A length {} != {}x{}",
            a_data.len(),
            m,
            k
        )));
    }
    if c_data.len() != m * n {
        return Err(ShapeError::new(format!(
            "gemm_prepacked: C length {} != {}x{}",
            c_data.len(),
            m,
            n
        )));
    }
    gemm_packed_core_fused(a_data, k, n, &b.data, c_data, epi);
    Ok(())
}

/// Shared band loop for [`gemm_prepacked_slice`] / [`gemm_packed_cols`]:
/// `b_data` is panel-packed, lengths already validated by callers.
///
/// The per-band microkernel lives in [`crate::kernels`]
/// (`gemm_packed_band`): register-blocked `ROW_BLOCK × PANEL`
/// accumulation in ascending-`kk` order on every dispatch path, so
/// results are bit-identical across scalar and (non-FMA) SIMD backends.
fn gemm_packed_core(a_data: &[f32], k: usize, n: usize, b_data: &[f32], c_data: &mut [f32]) {
    gemm_packed_core_fused(a_data, k, n, b_data, c_data, Epilogue::NONE);
}

/// [`gemm_packed_core`] with a fused epilogue threaded through to the
/// microkernels (a no-op epilogue dispatches to the plain kernels).
///
/// `m == 1` — the batch-1 inference shape — routes to the dedicated
/// GEMV kernel instead of a degenerate one-row band: row bands cannot
/// parallelize a single row, so the *columns* are split into
/// panel-aligned chunks ([`GEMV_COL_CHUNK`]) that stream disjoint
/// stripes of the packed `B` concurrently. Per output element the
/// accumulation order is unchanged (each element's sum only ever walks
/// its own panel in ascending `kk`), so the routing is bitwise
/// invisible next to the band path.
fn gemm_packed_core_fused(
    a_data: &[f32],
    k: usize,
    n: usize,
    b_data: &[f32],
    c_data: &mut [f32],
    epi: Epilogue<'_>,
) {
    // Resolve the kernel path once, outside the parallel loop, and pass
    // it by value into the band tasks (worker threads must not re-read
    // process-global dispatch state mid-operation).
    let path = kernels::selected();
    if n > 0 && c_data.len() == n {
        // m == 1: matvec. Validate the epilogue against the *full*
        // width up front so a short bias panics here, not per-chunk.
        epi.check(1, n);
        c_data
            .par_chunks_mut(GEMV_COL_CHUNK)
            .enumerate()
            .for_each(|(chunk, c_chunk)| {
                let c0 = chunk * GEMV_COL_CHUNK;
                // Chunks are panel-aligned, so the packed panels for
                // columns [c0, c0 + len) start at panel c0/PANEL.
                let b_sub = &b_data[(c0 / PANEL) * k * PANEL..];
                let sub_epi = Epilogue {
                    bias: epi.bias.map(|b| match b {
                        EpiBias::PerRow(rb) => EpiBias::PerRow(rb),
                        // The kernel indexes a per-column bias by local
                        // column, so shift its window to this chunk.
                        EpiBias::PerCol(cb) => EpiBias::PerCol(&cb[c0..]),
                    }),
                    relu: epi.relu,
                };
                kernels::gemv_packed_fused_with(
                    path,
                    a_data,
                    c_chunk.len(),
                    b_sub,
                    c_chunk,
                    sub_epi,
                );
            });
        return;
    }
    c_data
        .par_chunks_mut((ROW_BAND * n).max(1))
        .enumerate()
        .for_each(|(band, c_band)| {
            kernels::gemm_packed_band_fused_with(
                path,
                a_data,
                k,
                n,
                b_data,
                c_band,
                band * ROW_BAND,
                epi,
            );
        });
}

/// Naive triple-loop GEMM used as a correctness oracle in tests and as the
/// baseline in the `conv_strategy` ablation bench.
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> TensorResult<Matrix> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(ShapeError::new(format!(
            "gemm_naive: inner dims {}x{} * {}x{}",
            m, ka, kb, n
        )));
    }
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        for kk in 0..ka {
            let aik = a.get(r, kk);
            for cc in 0..n {
                let v = c.get(r, cc) + aik * b.get(kk, cc);
                c.set(r, cc, v);
            }
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Simple deterministic fill; values small enough to avoid f32 blowup.
        Matrix::from_fn(rows, cols, |r, c| {
            let h = r
                .wrapping_mul(31)
                .wrapping_add(c.wrapping_mul(17))
                .wrapping_add(seed as usize);
            ((h % 13) as f32 - 6.0) / 6.0
        })
    }

    #[test]
    fn identity_left() {
        let b = mat(4, 5, 1);
        let i = Matrix::identity(4);
        let c = gemm(&i, &b).unwrap();
        assert!(c.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn identity_right() {
        let a = mat(4, 5, 2);
        let i = Matrix::identity(5);
        let c = gemm(&a, &i).unwrap();
        assert!(c.max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn matches_naive_rectangular() {
        let a = mat(37, 19, 3);
        let b = mat(19, 53, 4);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
    }

    #[test]
    fn matches_naive_large_enough_for_multiple_bands() {
        let a = mat(100, 70, 5);
        let b = mat(70, 40, 6);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&a, &b).is_err());
    }

    #[test]
    fn prealloc_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(gemm_prealloc(&a, &b, &mut c).is_err());
    }

    #[test]
    fn prealloc_overwrites_stale_contents() {
        let a = Matrix::identity(3);
        let b = mat(3, 3, 7);
        let mut c = Matrix::full(3, 3, 99.0);
        gemm_prealloc(&a, &b, &mut c).unwrap();
        assert!(c.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn batch1_gemv_route_is_bitwise_equal_to_band_path() {
        // m == 1 routes through the chunked GEMV kernel; outputs must be
        // bit-equal to the generic row-band path (and hence to gemm()).
        for n in [1usize, 7, 8, 63, 64, 257, GEMV_COL_CHUNK + 5] {
            let a = mat(1, 40, 11);
            let b = mat(40, n, 12);
            let packed = PackedB::pack(&b);
            let mut c = Matrix::zeros(1, n);
            gemm_prepacked(&a, &packed, &mut c).unwrap();
            let oracle = gemm(&a, &b).unwrap();
            let got: Vec<u32> = c.as_slice().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = oracle.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn fused_epilogue_matches_unfused_passes_bitwise() {
        // Fused bias+ReLU must equal plain GEMM followed by separate
        // bias-add and ReLU passes, bit for bit, for both m == 1 (GEMV
        // route) and a multi-band m.
        for (m, n) in [(1usize, 300usize), (37, 53)] {
            let k = 29;
            let a = mat(m, k, 21);
            let b = mat(k, n, 22);
            let bias = mat(1, n, 23);
            let packed = PackedB::pack(&b);

            let mut unfused = Matrix::zeros(m, n);
            gemm_prepacked(&a, &packed, &mut unfused).unwrap();
            for r in 0..m {
                for c in 0..n {
                    let v = unfused.get(r, c) + bias.get(0, c);
                    unfused.set(r, c, if v > 0.0 { v } else { 0.0 });
                }
            }

            let mut fused = Matrix::zeros(m, n);
            let epi = Epilogue {
                bias: Some(EpiBias::PerCol(bias.as_slice())),
                relu: true,
            };
            gemm_prepacked_slice_fused(a.as_slice(), m, &packed, fused.as_mut_slice(), epi)
                .unwrap();

            let got: Vec<u32> = fused.as_slice().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = unfused.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "m = {m}, n = {n}");
        }
    }

    #[test]
    fn zero_sized_dims() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 4));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 4));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn prop_matches_naive(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed.wrapping_add(1));
            let fast = gemm(&a, &b).unwrap();
            let slow = gemm_naive(&a, &b).unwrap();
            prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }

        #[test]
        fn prop_distributes_over_addition(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..500) {
            // A*(B1+B2) == A*B1 + A*B2
            let a = mat(m, k, seed);
            let b1 = mat(k, n, seed.wrapping_add(10));
            let b2 = mat(k, n, seed.wrapping_add(20));
            let mut bsum = b1.clone();
            bsum.axpy(1.0, &b2).unwrap();
            let lhs = gemm(&a, &bsum).unwrap();
            let mut rhs = gemm(&a, &b1).unwrap();
            rhs.axpy(1.0, &gemm(&a, &b2).unwrap()).unwrap();
            prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
        }
    }
}
