//! Symmetric int8 quantization: scales, packed quantized operands, and
//! the drivers that turn the [`crate::kernels::int8`] microkernels into
//! whole-layer convolution / GEMM execution.
//!
//! # Quantization contract
//!
//! Everything here is **symmetric per-tensor** int8: a tensor `x` with
//! scale `s` maps to `q = clamp(round(x / s), -127, 127)` ([`quantize_i8`];
//! `round` is Rust's half-away-from-zero, NaN maps to 0) and back to
//! `x ≈ q · s`. The range is `±127`, not `-128`, so negation stays
//! closed and the AVX2 `madd` accumulation can never hit its lone
//! saturation case. Scales come from [`symmetric_scale`] (max-abs) or
//! [`percentile_scale`] (clipping outliers); a degenerate all-zero
//! tensor gets scale 1.0 so dequantization stays finite.
//!
//! Weights are quantized **once** at pack time with their own max-abs
//! scale; activations are quantized per forward call with a scale that
//! either comes from a calibration pass ([`CalibrationMethod`], see
//! `cap-cnn`'s `Network::calibrate`) or falls back to the caller's
//! on-the-fly estimate. A product `a_q · b_q` then dequantizes by the
//! combined `s_a · s_b`, which the kernels fold into their store
//! epilogue — the "dequantize-in-epilogue" design: integer math in the
//! hot loop, one float multiply per output element, and the existing
//! bias/ReLU [`Epilogue`] applied after it, unchanged.
//!
//! The simulated quantization report in `cap_pruning::quantize`
//! (`quantize_uniform`) models arbitrary bit widths by rounding f32
//! weights in place; this module is the *real* 8-bit member of that
//! family — same symmetric contract, actually executed by integer
//! kernels. The `CAP_TENSOR_PRECISION` knob ([`crate::precision`])
//! decides which path a `Network` runs.

use crate::conv::{credit_ns, split_clock, Conv2dParams};
use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::im2col::im2col_prealloc;
use crate::kernels::{self, int8 as ki8, EpiBias, Epilogue, PANEL};
use crate::sparse::CsrMatrix;
use crate::tensor4::Tensor4;
use crate::workspace::WorkspacePool;
use rayon::prelude::*;

/// Max-abs symmetric scale: `max|x| / 127`, or `1.0` for an all-zero
/// (or empty) slice so downstream divisions stay finite. NaN entries
/// are ignored.
pub fn symmetric_scale(values: &[f32]) -> f32 {
    let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Percentile symmetric scale: the `pct`-th percentile (0–100,
/// nearest-rank on the sorted magnitudes) of `|x|`, divided by 127.
/// Values above the chosen magnitude saturate to ±127 — trading a
/// little clipping error on outliers for finer resolution everywhere
/// else, the classic calibration knob. `pct = 100` degenerates to
/// [`symmetric_scale`].
pub fn percentile_scale(values: &[f32], pct: f64) -> f32 {
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be in 0..=100, got {pct}"
    );
    let mut mags: Vec<f32> = values
        .iter()
        .map(|v| v.abs())
        .filter(|v| !v.is_nan())
        .collect();
    if mags.is_empty() {
        return 1.0;
    }
    mags.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
    let idx = ((mags.len() - 1) as f64 * pct / 100.0).round() as usize;
    let m = mags[idx];
    if m > 0.0 {
        m / 127.0
    } else {
        1.0
    }
}

/// How an activation-range calibration pass turns observed activations
/// into a per-layer scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationMethod {
    /// Scale from the absolute maximum — no clipping, coarsest
    /// resolution when outliers are present.
    MaxAbs,
    /// Scale from the given percentile (0–100) of activation
    /// magnitudes — clips the tail beyond it to ±127.
    Percentile(f64),
}

impl CalibrationMethod {
    /// Compute the symmetric scale this method assigns to `values`.
    pub fn scale_for(&self, values: &[f32]) -> f32 {
        match *self {
            CalibrationMethod::MaxAbs => symmetric_scale(values),
            CalibrationMethod::Percentile(p) => percentile_scale(values, p),
        }
    }
}

/// Quantize one value: `clamp(round(v * inv_scale), -127, 127)`.
/// `inv_scale` is `1.0 / scale` (hoisted by callers); NaN maps to 0.
#[inline]
pub fn quantize_i8(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantize a row-major `rows × k` f32 slice into row-major i8 with
/// the even row stride `kp` the int8 kernels require (odd `k` pads a
/// zero), reusing `out`'s capacity. Returns `kp`.
pub fn quantize_rows_into(
    src: &[f32],
    rows: usize,
    k: usize,
    inv_scale: f32,
    out: &mut Vec<i8>,
) -> usize {
    assert!(src.len() >= rows * k, "quantize_rows_into: src too short");
    let kp = k.next_multiple_of(2);
    out.clear();
    out.resize(rows * kp, 0);
    for r in 0..rows {
        for (d, &v) in out[r * kp..r * kp + k].iter_mut().zip(&src[r * k..]) {
            *d = quantize_i8(v, inv_scale);
        }
    }
    kp
}

/// Quantize a row-major `k × n` f32 slice straight into the
/// pair-interleaved i8 panel layout of [`crate::kernels::int8`]
/// (`n.div_ceil(PANEL)` panels of `kp × PANEL`; depth pairs adjacent
/// per column, tail columns and the odd-`k` pad zero-filled), reusing
/// `out`'s capacity. Returns `kp`. This is the int8 analogue of
/// `pack_b_slice_into` with the quantize folded into the single write
/// pass.
pub fn pack_b_i8_into(src: &[f32], k: usize, n: usize, inv_scale: f32, out: &mut Vec<i8>) -> usize {
    assert!(src.len() >= k * n, "pack_b_i8_into: src too short");
    let kp = k.next_multiple_of(2);
    let panels = n.div_ceil(PANEL);
    out.clear();
    out.resize(panels * kp * PANEL, 0);
    for p in 0..panels {
        let c0 = p * PANEL;
        let width = PANEL.min(n - c0);
        let dst = &mut out[p * kp * PANEL..(p + 1) * kp * PANEL];
        for r in 0..k {
            let slot = (r / 2) * 2 * PANEL + (r % 2);
            let srow = &src[r * n + c0..r * n + c0 + width];
            for (j, &v) in srow.iter().enumerate() {
                dst[slot + 2 * j] = quantize_i8(v, inv_scale);
            }
        }
    }
    kp
}

/// Quantize a flat f32 slice element-wise into `out` (same layout),
/// reusing capacity — the SpMM path's row-major dense operand.
pub fn quantize_dense_i8_into(src: &[f32], inv_scale: f32, out: &mut Vec<i8>) {
    out.clear();
    out.extend(src.iter().map(|&v| quantize_i8(v, inv_scale)));
}

/// A quantized row-major left operand (weights, or batched
/// activations): i8 rows with even stride `kp`, plus the scale that
/// dequantizes them.
#[derive(Debug, Clone)]
pub struct QuantizedA {
    data: Vec<i8>,
    rows: usize,
    k: usize,
    kp: usize,
    scale: f32,
}

impl QuantizedA {
    /// Quantize the first `rows × k` of `src` with `scale`.
    pub fn quantize(src: &[f32], rows: usize, k: usize, scale: f32) -> Self {
        let mut data = Vec::new();
        let kp = quantize_rows_into(src, rows, k, 1.0 / scale, &mut data);
        Self {
            data,
            rows,
            k,
            kp,
            scale,
        }
    }

    /// Quantized rows as a flat slice (stride [`QuantizedA::kp`]).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical depth (pre-padding).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Padded (even) row stride.
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// Dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// A quantized panel-packed right operand — the int8 analogue of
/// [`crate::PackedB`], in the pair-interleaved layout of
/// [`crate::kernels::int8`]. Built once per weight matrix (FC `Wᵀ`);
/// activations use [`pack_b_i8_into`] into pooled scratch instead.
#[derive(Debug, Clone)]
pub struct PackedBI8 {
    data: Vec<i8>,
    k: usize,
    kp: usize,
    n: usize,
    scale: f32,
}

impl PackedBI8 {
    /// Quantize and pack a `k × n` matrix with `scale`.
    pub fn pack(b: &Matrix, scale: f32) -> Self {
        let (k, n) = b.shape();
        let mut data = Vec::new();
        let kp = pack_b_i8_into(b.as_slice(), k, n, 1.0 / scale, &mut data);
        Self {
            data,
            k,
            kp,
            n,
            scale,
        }
    }

    /// Packed panels as a flat slice.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Logical depth (pre-padding).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Padded (even) panel depth.
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// Column count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// A quantized CSR matrix: the f32 values of a [`CsrMatrix`] mapped to
/// i8 with one per-tensor scale, structure (row pointers / column
/// indices) unchanged. Built through the public CSR iterator, so it
/// needs no access to the source matrix's internals.
#[derive(Debug, Clone)]
pub struct QuantizedCsr {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<i8>,
    rows: usize,
    cols: usize,
    scale: f32,
}

impl QuantizedCsr {
    /// Quantize all of `csr` with `scale`.
    pub fn from_csr(csr: &CsrMatrix, scale: f32) -> Self {
        Self::from_csr_rows(csr, 0, csr.rows(), scale)
    }

    /// Quantize the row band `r0..r1` of `csr` with `scale` (used to
    /// split grouped-convolution weights without densifying).
    pub fn from_csr_rows(csr: &CsrMatrix, r0: usize, r1: usize, scale: f32) -> Self {
        assert!(r0 <= r1 && r1 <= csr.rows());
        let rows = r1 - r0;
        let inv = 1.0 / scale;
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for (r, c, v) in csr.iter() {
            if r < r0 || r >= r1 {
                continue;
            }
            row_ptr[r - r0 + 1] += 1;
            col_idx.push(c as u32);
            values.push(quantize_i8(v, inv));
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            row_ptr,
            col_idx,
            values,
            rows,
            cols: csr.cols(),
            scale,
        }
    }

    /// `(values, col_idx)` of row `r`.
    pub fn row(&self, r: usize) -> (&[i8], &[u32]) {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.values[s..e], &self.col_idx[s..e])
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entry count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// Row bands processed per rayon task by [`gemm_i8`] (mirrors the f32
/// GEMM's banding).
const ROW_BAND: usize = 32;

/// Output columns per rayon task on the single-row (GEMV) route.
const GEMV_COL_CHUNK: usize = 32 * PANEL;

/// Shift a [`EpiBias::PerCol`] epilogue to a column-chunk origin (a
/// per-row bias is chunk-invariant).
fn epi_col_offset<'a>(epi: Epilogue<'a>, c0: usize) -> Epilogue<'a> {
    match epi.bias {
        Some(EpiBias::PerCol(b)) => Epilogue {
            bias: Some(EpiBias::PerCol(&b[c0..])),
            relu: epi.relu,
        },
        _ => epi,
    }
}

/// Int8 GEMM driver: `m × kp` row-major i8 `a_data` times the
/// pair-interleaved panel-packed `b_data` (`n` columns), dequantized by
/// `scale` with `epi` fused into the store, written to the row-major
/// f32 `out`. Parallelism mirrors the f32 packed GEMM: `m == 1` routes
/// through the GEMV kernel over column chunks, otherwise rows split
/// into `ROW_BAND` bands — neither affects results (exact i32
/// accumulation, then an element-wise float epilogue).
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8(
    a_data: &[i8],
    m: usize,
    kp: usize,
    n: usize,
    b_data: &[i8],
    out: &mut [f32],
    scale: f32,
    epi: Epilogue<'_>,
) -> TensorResult<()> {
    if out.len() < m * n {
        return Err(ShapeError::new(format!(
            "gemm_i8: out length {} < {m}x{n}",
            out.len()
        )));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let path = kernels::selected();
    if m == 1 {
        let plen = kp * PANEL;
        out[..n]
            .par_chunks_mut(GEMV_COL_CHUNK)
            .enumerate()
            .for_each(|(ci, chunk)| {
                let c0 = ci * GEMV_COL_CHUNK;
                let b_sub = &b_data[(c0 / PANEL) * plen..];
                ki8::gemv_i8_packed_with(
                    path,
                    &a_data[..kp],
                    chunk.len(),
                    b_sub,
                    chunk,
                    0,
                    scale,
                    epi_col_offset(epi, c0),
                );
            });
    } else {
        out[..m * n]
            .par_chunks_mut(ROW_BAND * n)
            .enumerate()
            .for_each(|(bi, band)| {
                ki8::gemm_i8_packed_band_with(
                    path,
                    a_data,
                    kp,
                    n,
                    b_data,
                    band,
                    bi * ROW_BAND,
                    scale,
                    epi,
                );
            });
    }
    Ok(())
}

/// Convolution weights quantized per-tensor and split into per-group
/// row-major i8 bands — the int8 analogue of
/// [`crate::PackedConvWeights`]. The scale is max-abs over the whole
/// layer (per-layer symmetric quantization).
#[derive(Debug, Clone)]
pub struct QuantizedConvWeights {
    bands: Vec<QuantizedA>,
    scale: f32,
}

impl QuantizedConvWeights {
    /// Quantize `weights` (`out_channels × in_per_group*kh*kw`) and
    /// split by group.
    pub fn pack(weights: &Matrix, params: &Conv2dParams) -> TensorResult<Self> {
        params.validate()?;
        let opg = params.out_per_group();
        let col_rows = params.in_per_group() * params.kh * params.kw;
        if weights.shape() != (params.out_channels, col_rows) {
            return Err(ShapeError::new(format!(
                "conv quantize: weights {:?}, expected {:?}",
                weights.shape(),
                (params.out_channels, col_rows)
            )));
        }
        let scale = symmetric_scale(weights.as_slice());
        let bands = (0..params.groups)
            .map(|g| {
                QuantizedA::quantize(
                    &weights.as_slice()[g * opg * col_rows..],
                    opg,
                    col_rows,
                    scale,
                )
            })
            .collect();
        Ok(Self { bands, scale })
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.bands.len()
    }

    /// Quantized weight band for group `g`.
    pub fn band(&self, g: usize) -> &QuantizedA {
        &self.bands[g]
    }

    /// Weight dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

/// Sparse convolution weights quantized per-tensor and split into
/// per-group [`QuantizedCsr`] bands — the int8 analogue of
/// [`crate::PackedSparseConvWeights`].
#[derive(Debug, Clone)]
pub struct QuantizedSparseConvWeights {
    bands: Vec<QuantizedCsr>,
    scale: f32,
}

impl QuantizedSparseConvWeights {
    /// Quantize CSR `weights` (`out_channels × in_per_group*kh*kw`) and
    /// split by group (structure preserved; no densify round-trip).
    pub fn pack(weights: &CsrMatrix, params: &Conv2dParams) -> TensorResult<Self> {
        params.validate()?;
        let col_rows = params.in_per_group() * params.kh * params.kw;
        if weights.shape() != (params.out_channels, col_rows) {
            return Err(ShapeError::new(format!(
                "conv quantize: sparse weights {:?}, expected {:?}",
                weights.shape(),
                (params.out_channels, col_rows)
            )));
        }
        let max_abs = weights.iter().fold(0.0f32, |m, (_, _, v)| m.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let opg = params.out_per_group();
        let bands = (0..params.groups)
            .map(|g| QuantizedCsr::from_csr_rows(weights, g * opg, (g + 1) * opg, scale))
            .collect();
        Ok(Self { bands, scale })
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.bands.len()
    }

    /// Quantized CSR band for group `g`.
    pub fn band(&self, g: usize) -> &QuantizedCsr {
        &self.bands[g]
    }

    /// Weight dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }
}

fn check_conv_io(params: &Conv2dParams, input: &Tensor4, bias: Option<&[f32]>) -> TensorResult<()> {
    if input.c() != params.in_channels {
        return Err(ShapeError::new(format!(
            "conv int8: input channels {} != {}",
            input.c(),
            params.in_channels
        )));
    }
    if let Some(b) = bias {
        if b.len() != params.out_channels {
            return Err(ShapeError::new(format!(
                "conv int8: bias length {} != out_channels {}",
                b.len(),
                params.out_channels
            )));
        }
    }
    Ok(())
}

/// Int8 im2col+GEMM convolution — the quantized counterpart of
/// [`crate::conv2d_gemm_packed_fused`]. Weights arrive pre-quantized;
/// activations are quantized per image inside the loop with
/// `act_scale` (calibrated, or the caller's max-abs estimate), lowered
/// by the f32 im2col and packed into the pair-interleaved i8 layout in
/// the same scratch pass. Bias/ReLU (in f32, applied after
/// dequantization) ride the GEMM store exactly as on the f32 path.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8_packed_fused(
    input: &Tensor4,
    weights: &QuantizedConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
    relu: bool,
    act_scale: f32,
) -> TensorResult<()> {
    params.validate()?;
    check_conv_io(params, input, bias)?;
    if weights.groups() != params.groups {
        return Err(ShapeError::new(format!(
            "conv int8: {} weight bands, expected {} groups",
            weights.groups(),
            params.groups
        )));
    }
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    out.resize(n, params.out_channels, oh, ow);

    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    let n_out = oh * ow;
    let out_image_len = params.out_channels * n_out;
    let in_image_len = params.in_channels * h * w;

    let timing = cap_obs::timing_enabled();
    let inv_act = 1.0 / act_scale;
    let scale = weights.scale() * act_scale;

    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(input.as_slice().par_chunks(in_image_len.max(1)))
        .try_for_each_init(
            || pool.checkout(),
            |ws, (out_img, in_img)| -> TensorResult<()> {
                let prod_shape = if params.groups == 1 {
                    (0, 0)
                } else {
                    (opg, n_out)
                };
                let (cols, qb, prod) = ws.conv_quant_slots((col_rows, n_out), prod_shape);
                for g in 0..params.groups {
                    let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                    // Lower to the f32 patch matrix, then quantize+pack
                    // it into the i8 panel layout in one write pass —
                    // both are lowering cost, credited to the im2col
                    // side of the time split.
                    let t_col = split_clock(timing);
                    im2col_prealloc(
                        in_slice,
                        cpg,
                        h,
                        w,
                        params.kh,
                        params.kw,
                        params.pad,
                        params.stride,
                        cols,
                    )?;
                    let kp = pack_b_i8_into(cols.as_slice(), col_rows, n_out, inv_act, qb);
                    credit_ns(t_col, &cap_obs::metrics().im2col_time_ns);
                    let t_gemm = split_clock(timing);
                    let band = weights.band(g);
                    debug_assert_eq!(band.kp(), kp);
                    let epi = Epilogue {
                        bias: bias.map(|b| EpiBias::PerRow(&b[g * opg..(g + 1) * opg])),
                        relu,
                    };
                    if params.groups == 1 {
                        gemm_i8(band.data(), opg, kp, n_out, qb, out_img, scale, epi)?;
                    } else {
                        gemm_i8(
                            band.data(),
                            opg,
                            kp,
                            n_out,
                            qb,
                            prod.as_mut_slice(),
                            scale,
                            epi,
                        )?;
                        let dst = &mut out_img[g * opg * n_out..(g + 1) * opg * n_out];
                        dst.copy_from_slice(prod.as_slice());
                    }
                    credit_ns(t_gemm, &cap_obs::metrics().gemm_time_ns);
                }
                Ok(())
            },
        )?;
    Ok(())
}

/// Int8 CSR-sparse convolution — the quantized counterpart of
/// [`crate::conv2d_sparse_packed_fused`]: quantized sparse weights
/// against the row-major quantized patch matrix, i32-exact SpMM rows,
/// dequantize + bias/ReLU in the store.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_i8_sparse_fused(
    input: &Tensor4,
    weights: &QuantizedSparseConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
    relu: bool,
    act_scale: f32,
) -> TensorResult<()> {
    params.validate()?;
    check_conv_io(params, input, bias)?;
    if weights.groups() != params.groups {
        return Err(ShapeError::new(format!(
            "conv int8: {} weight bands, expected {} groups",
            weights.groups(),
            params.groups
        )));
    }
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    out.resize(n, params.out_channels, oh, ow);

    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    let n_out = oh * ow;
    let out_image_len = params.out_channels * n_out;
    let in_image_len = params.in_channels * h * w;

    let timing = cap_obs::timing_enabled();
    let inv_act = 1.0 / act_scale;
    let scale = weights.scale() * act_scale;
    let path = kernels::selected();

    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(input.as_slice().par_chunks(in_image_len.max(1)))
        .try_for_each_init(
            || pool.checkout(),
            |ws, (out_img, in_img)| -> TensorResult<()> {
                let (cols, qb, prod) = ws.conv_quant_slots((col_rows, n_out), (opg, n_out));
                for g in 0..params.groups {
                    let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                    let t_col = split_clock(timing);
                    im2col_prealloc(
                        in_slice,
                        cpg,
                        h,
                        w,
                        params.kh,
                        params.kw,
                        params.pad,
                        params.stride,
                        cols,
                    )?;
                    quantize_dense_i8_into(cols.as_slice(), inv_act, qb);
                    credit_ns(t_col, &cap_obs::metrics().im2col_time_ns);
                    let t_gemm = split_clock(timing);
                    let band = weights.band(g);
                    prod.as_mut_slice()
                        .par_chunks_mut(n_out.max(1))
                        .enumerate()
                        .for_each(|(r, prow)| {
                            let (vals, cidx) = band.row(r);
                            ki8::spmm_i8_row_with(
                                path,
                                vals,
                                cidx,
                                qb,
                                n_out,
                                prow,
                                scale,
                                bias.map(|b| b[g * opg + r]),
                                relu,
                            );
                        });
                    credit_ns(t_gemm, &cap_obs::metrics().gemm_time_ns);
                    out_img[g * opg * n_out..(g + 1) * opg * n_out]
                        .copy_from_slice(prod.as_slice());
                }
                Ok(())
            },
        )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_gemm;
    use crate::gemm::gemm;

    fn det_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((((r + seed) * 13 + c * 7) % 17) as f32 - 8.0) / 8.0
        })
    }

    #[test]
    fn scales_and_quantize_roundtrip() {
        assert_eq!(symmetric_scale(&[0.0, 0.0]), 1.0);
        assert_eq!(symmetric_scale(&[]), 1.0);
        let s = symmetric_scale(&[-2.54, 1.0]);
        assert!((s - 2.54 / 127.0).abs() < 1e-7);
        // The max-abs element maps exactly to ±127.
        assert_eq!(quantize_i8(-2.54, 1.0 / s), -127);
        // Percentile 100 == max-abs; lower percentiles clip.
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(percentile_scale(&vals, 100.0), symmetric_scale(&vals));
        assert!(percentile_scale(&vals, 50.0) < symmetric_scale(&vals));
        // Saturation beyond the clipped range.
        let inv = 1.0 / percentile_scale(&vals, 50.0);
        assert_eq!(quantize_i8(99.0, inv), 127);
        // NaN quantizes to zero, not UB.
        assert_eq!(quantize_i8(f32::NAN, 1.0), 0);
    }

    #[test]
    fn gemm_i8_approximates_f32_gemm() {
        for &(m, k, n) in &[(1usize, 40usize, 50usize), (13, 27, 19)] {
            let a = det_matrix(m, k, 1);
            let b = det_matrix(k, n, 2);
            let want = gemm(&a, &b).unwrap();
            let a_scale = symmetric_scale(a.as_slice());
            let qa = QuantizedA::quantize(a.as_slice(), m, k, a_scale);
            let qb = PackedBI8::pack(&b, symmetric_scale(b.as_slice()));
            let mut got = vec![0.0f32; m * n];
            gemm_i8(
                qa.data(),
                m,
                qa.kp(),
                n,
                qb.data(),
                &mut got,
                qa.scale() * qb.scale(),
                Epilogue::NONE,
            )
            .unwrap();
            // Quantization error per product is ~scale/2 each side;
            // k-term dot products stay within a loose relative bound.
            for (g, w) in got.iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 0.05 * (k as f32).sqrt(), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn quantized_csr_preserves_structure() {
        let mut m = det_matrix(6, 8, 3);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let csr = CsrMatrix::from_dense(&m, 0.0);
        let q = QuantizedCsr::from_csr(&csr, symmetric_scale(m.as_slice()));
        assert_eq!(q.rows(), 6);
        assert_eq!(q.cols(), 8);
        assert_eq!(q.nnz(), csr.nnz());
        // Band split covers the same entries.
        let top = QuantizedCsr::from_csr_rows(&csr, 0, 3, q.scale());
        let bot = QuantizedCsr::from_csr_rows(&csr, 3, 6, q.scale());
        assert_eq!(top.nnz() + bot.nnz(), q.nnz());
        assert_eq!(top.row(1), q.row(1));
        assert_eq!(bot.row(0), q.row(3));
    }

    #[test]
    fn int8_conv_tracks_f32_conv() {
        let params = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
        let input = Tensor4::from_fn(2, 4, 7, 7, |n, c, h, w| {
            (((n * 7 + c * 5 + h * 3 + w) % 11) as f32 - 5.0) / 5.0
        });
        let weights = det_matrix(6, 2 * 9, 5);
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.05).collect();
        let want = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();

        let qw = QuantizedConvWeights::pack(&weights, &params).unwrap();
        let act_scale = symmetric_scale(input.as_slice());
        let pool = WorkspacePool::new();
        let mut got = Tensor4::zeros(0, 0, 0, 0);
        conv2d_i8_packed_fused(
            &input,
            &qw,
            Some(&bias),
            &params,
            &pool,
            &mut got,
            false,
            act_scale,
        )
        .unwrap();
        assert!(got.max_abs_diff(&want).unwrap() < 0.2);

        // The sparse int8 path agrees with the dense int8 path when the
        // weights happen to be dense (same integer math, CSR order).
        let csr = CsrMatrix::from_dense(&weights, 0.0);
        let qs = QuantizedSparseConvWeights::pack(&csr, &params).unwrap();
        let mut got_sparse = Tensor4::zeros(0, 0, 0, 0);
        conv2d_i8_sparse_fused(
            &input,
            &qs,
            Some(&bias),
            &params,
            &pool,
            &mut got_sparse,
            false,
            act_scale,
        )
        .unwrap();
        assert!(got_sparse.max_abs_diff(&want).unwrap() < 0.2);
    }
}
