//! im2col / col2im lowering for convolution-as-GEMM.
//!
//! Caffe implements convolution by unrolling input patches into a matrix
//! (`im2col`) and multiplying with the filter matrix. We follow the same
//! scheme: for an input image of shape `C×H×W` and a kernel `kh×kw` with
//! stride/pad, the column matrix has shape
//! `(C*kh*kw) × (out_h*out_w)`.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};

/// Output spatial size of a convolution/pooling window sweep.
///
/// Returns `(out_h, out_w)` for input `h×w`, kernel `kh×kw`, given pad and
/// stride; errors if the window never fits.
pub fn out_spatial(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<(usize, usize)> {
    if stride == 0 {
        return Err(ShapeError::new("out_spatial: stride must be >= 1"));
    }
    if kh == 0 || kw == 0 {
        return Err(ShapeError::new("out_spatial: kernel dims must be >= 1"));
    }
    let h_eff = h + 2 * pad;
    let w_eff = w + 2 * pad;
    if h_eff < kh || w_eff < kw {
        return Err(ShapeError::new(format!(
            "out_spatial: kernel {}x{} larger than padded input {}x{}",
            kh, kw, h_eff, w_eff
        )));
    }
    Ok(((h_eff - kh) / stride + 1, (w_eff - kw) / stride + 1))
}

/// Unroll one image (`C×H×W`, flattened channel-major) into a column
/// matrix of shape `(c*kh*kw) × (out_h*out_w)`.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<Matrix> {
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    let mut cols = Matrix::zeros(c * kh * kw, out_h * out_w);
    im2col_prealloc(image, c, h, w, kh, kw, pad, stride, &mut cols)?;
    Ok(cols)
}

/// `im2col` into a preallocated output matrix (shape-checked), avoiding
/// per-call allocation in batched inference loops.
#[allow(clippy::too_many_arguments)]
pub fn im2col_prealloc(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
    cols: &mut Matrix,
) -> TensorResult<()> {
    if image.len() != c * h * w {
        return Err(ShapeError::new(format!(
            "im2col: image length {} != {}x{}x{}",
            image.len(),
            c,
            h,
            w
        )));
    }
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    if cols.shape() != (c * kh * kw, out_h * out_w) {
        return Err(ShapeError::new(format!(
            "im2col: cols shape {:?} != {:?}",
            cols.shape(),
            (c * kh * kw, out_h * out_w)
        )));
    }
    let n_out = out_h * out_w;
    let data = cols.as_mut_slice();
    // Row index of `cols` enumerates (channel, ky, kx); column enumerates
    // (oy, ox). We walk rows outermost for cache-friendly writes.
    for ci in 0..c {
        let ch = &image[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let out_row = &mut data[row * n_out..(row + 1) * n_out];
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..out_w {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        out_row[oy * out_w + ox] =
                            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                ch[iy as usize * w + ix as usize]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
    Ok(())
}

/// Fold a column matrix back into an image, **accumulating** overlapping
/// contributions (the adjoint of `im2col`, used by the conv backward pass).
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Matrix,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<Vec<f32>> {
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    if cols.shape() != (c * kh * kw, out_h * out_w) {
        return Err(ShapeError::new(format!(
            "col2im: cols shape {:?} != {:?}",
            cols.shape(),
            (c * kh * kw, out_h * out_w)
        )));
    }
    let mut image = vec![0.0_f32; c * h * w];
    let n_out = out_h * out_w;
    let data = cols.as_slice();
    for ci in 0..c {
        let ch = &mut image[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let col_row = &data[row * n_out..(row + 1) * n_out];
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        ch[iy as usize * w + ix as usize] += col_row[oy * out_w + ox];
                    }
                }
            }
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn out_spatial_basic() {
        // Caffenet conv1: 224x224, k=11, pad=0 (per Figure 1, stride 4 -> 55 needs pad?).
        // AlexNet canonical: 227x227 k11 s4 p0 -> 55. With 224 input, pad 2: (224+4-11)/4+1 = 55.
        assert_eq!(out_spatial(227, 227, 11, 11, 0, 4).unwrap(), (55, 55));
        assert_eq!(out_spatial(224, 224, 11, 11, 2, 4).unwrap(), (55, 55));
        assert_eq!(out_spatial(5, 5, 3, 3, 1, 1).unwrap(), (5, 5));
    }

    #[test]
    fn out_spatial_rejects_degenerate() {
        assert!(out_spatial(5, 5, 3, 3, 0, 0).is_err());
        assert!(out_spatial(2, 2, 3, 3, 0, 1).is_err());
        assert!(out_spatial(5, 5, 0, 3, 0, 1).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: cols == image reshaped.
        let image: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let cols = im2col(&image, 2, 3, 3, 1, 1, 0, 1).unwrap();
        assert_eq!(cols.shape(), (2, 9));
        assert_eq!(cols.as_slice(), image.as_slice());
    }

    #[test]
    fn im2col_known_3x3() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 cols.
        let image = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let cols = im2col(&image, 1, 3, 3, 2, 2, 0, 1).unwrap();
        assert_eq!(cols.shape(), (4, 4));
        // Patch at (0,0): [1,2,4,5]; (0,1): [2,3,5,6]; (1,0): [4,5,7,8]; (1,1): [5,6,8,9].
        // Row = kernel position, column = patch.
        assert_eq!(cols.row(0), &[1.0, 2.0, 4.0, 5.0]); // top-left of each patch
        assert_eq!(cols.row(1), &[2.0, 3.0, 5.0, 6.0]); // top-right
        assert_eq!(cols.row(2), &[4.0, 5.0, 7.0, 8.0]); // bottom-left
        assert_eq!(cols.row(3), &[5.0, 6.0, 8.0, 9.0]); // bottom-right
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let image = vec![1.0; 4]; // 1x2x2
        let cols = im2col(&image, 1, 2, 2, 3, 3, 1, 1).unwrap();
        assert_eq!(cols.shape(), (9, 4));
        // Center kernel tap (ky=1,kx=1) always lands inside -> all ones.
        assert_eq!(cols.row(4), &[1.0, 1.0, 1.0, 1.0]);
        // Top-left tap only valid for bottom-right output.
        assert_eq!(cols.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn im2col_rejects_bad_image_len() {
        assert!(im2col(&[0.0; 5], 1, 2, 3, 1, 1, 0, 1).is_err());
    }

    #[test]
    fn col2im_adjoint_counts_overlaps() {
        // ones image; im2col then col2im counts how many patches each pixel is in.
        let image = vec![1.0; 9];
        let cols = im2col(&image, 1, 3, 3, 2, 2, 0, 1).unwrap();
        let back = col2im(&cols, 1, 3, 3, 2, 2, 0, 1).unwrap();
        // Corner pixels appear in 1 patch, edges in 2, center in 4.
        assert_eq!(back, vec![1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]);
    }

    proptest! {
        /// <x, im2col(y)> == <col2im(x), y> — adjointness of the pair,
        /// checked via the count matrix trick on random shapes.
        #[test]
        fn prop_im2col_shape(c in 1usize..4, h in 3usize..8, w in 3usize..8,
                             k in 1usize..4, pad in 0usize..2, stride in 1usize..3) {
            let image = vec![0.5; c * h * w];
            if let Ok((oh, ow)) = out_spatial(h, w, k, k, pad, stride) {
                let cols = im2col(&image, c, h, w, k, k, pad, stride).unwrap();
                prop_assert_eq!(cols.shape(), (c * k * k, oh * ow));
                let back = col2im(&cols, c, h, w, k, k, pad, stride).unwrap();
                prop_assert_eq!(back.len(), image.len());
            }
        }
    }
}
