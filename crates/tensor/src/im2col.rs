//! im2col / col2im lowering for convolution-as-GEMM.
//!
//! Caffe implements convolution by unrolling input patches into a matrix
//! (`im2col`) and multiplying with the filter matrix. We follow the same
//! scheme: for an input image of shape `C×H×W` and a kernel `kh×kw` with
//! stride/pad, the column matrix has shape
//! `(C*kh*kw) × (out_h*out_w)`.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::kernels::PANEL;

/// Output spatial size of a convolution/pooling window sweep.
///
/// Returns `(out_h, out_w)` for input `h×w`, kernel `kh×kw`, given pad and
/// stride; errors if the window never fits.
pub fn out_spatial(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<(usize, usize)> {
    if stride == 0 {
        return Err(ShapeError::new("out_spatial: stride must be >= 1"));
    }
    if kh == 0 || kw == 0 {
        return Err(ShapeError::new("out_spatial: kernel dims must be >= 1"));
    }
    let h_eff = h + 2 * pad;
    let w_eff = w + 2 * pad;
    if h_eff < kh || w_eff < kw {
        return Err(ShapeError::new(format!(
            "out_spatial: kernel {}x{} larger than padded input {}x{}",
            kh, kw, h_eff, w_eff
        )));
    }
    Ok(((h_eff - kh) / stride + 1, (w_eff - kw) / stride + 1))
}

/// Unroll one image (`C×H×W`, flattened channel-major) into a column
/// matrix of shape `(c*kh*kw) × (out_h*out_w)`.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<Matrix> {
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    let mut cols = Matrix::zeros(c * kh * kw, out_h * out_w);
    im2col_prealloc(image, c, h, w, kh, kw, pad, stride, &mut cols)?;
    Ok(cols)
}

/// `im2col` into a preallocated output matrix (shape-checked), avoiding
/// per-call allocation in batched inference loops.
#[allow(clippy::too_many_arguments)]
pub fn im2col_prealloc(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
    cols: &mut Matrix,
) -> TensorResult<()> {
    if image.len() != c * h * w {
        return Err(ShapeError::new(format!(
            "im2col: image length {} != {}x{}x{}",
            image.len(),
            c,
            h,
            w
        )));
    }
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    if cols.shape() != (c * kh * kw, out_h * out_w) {
        return Err(ShapeError::new(format!(
            "im2col: cols shape {:?} != {:?}",
            cols.shape(),
            (c * kh * kw, out_h * out_w)
        )));
    }
    let n_out = out_h * out_w;
    let data = cols.as_mut_slice();
    // Row index of `cols` enumerates (channel, ky, kx); column enumerates
    // (oy, ox). We walk rows outermost for cache-friendly writes.
    //
    // For a fixed (ky, kx, oy) the source index is affine in ox
    // (`ix = ox*stride + kx - pad` on input row `iy`), so instead of a
    // bounds branch per element the valid `ox` range is computed once
    // per output row and the body is a zero-fill of the out-of-image
    // margins plus one contiguous `copy_from_slice` (stride 1) or a
    // branchless strided gather. im2col is pure data movement — this
    // changes nothing about which values land where, only how fast.
    for ci in 0..c {
        let ch = &image[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let out_row = &mut data[row * n_out..(row + 1) * n_out];
                // ox is valid iff 0 <= ox*stride + kx - pad < w:
                let ox_lo = if kx >= pad {
                    0
                } else {
                    (pad - kx).div_ceil(stride).min(out_w)
                };
                let ox_hi = if w + pad <= kx {
                    0
                } else {
                    ((w - 1 + pad - kx) / stride + 1).min(out_w)
                }
                .max(ox_lo);
                for oy in 0..out_h {
                    let dst = &mut out_row[oy * out_w..(oy + 1) * out_w];
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || (iy as usize) >= h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &ch[iy as usize * w..(iy as usize + 1) * w];
                    dst[..ox_lo].fill(0.0);
                    dst[ox_hi..].fill(0.0);
                    // First valid source index; >= 0 by choice of ox_lo.
                    let base = ox_lo * stride + kx - pad;
                    if stride == 1 {
                        dst[ox_lo..ox_hi].copy_from_slice(&src_row[base..base + (ox_hi - ox_lo)]);
                    } else {
                        for (i, d) in dst[ox_lo..ox_hi].iter_mut().enumerate() {
                            *d = src_row[base + i * stride];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Visit the packed-layout segments covering columns `[c0, c1)` of
/// logical row `row`: panel `p` stores its `k × PANEL` block at
/// `p*k*PANEL`, row-major, so a column range maps to at most one
/// contiguous lane run per panel. Calls `f(dst_start, len)` per run.
#[inline]
fn packed_row_segments(
    c0: usize,
    c1: usize,
    k: usize,
    row: usize,
    mut f: impl FnMut(usize, usize),
) {
    let mut c = c0;
    while c < c1 {
        let lane = c % PANEL;
        let take = (PANEL - lane).min(c1 - c);
        f((c / PANEL) * k * PANEL + row * PANEL + lane, take);
        c += take;
    }
}

/// `im2col` straight into the GEMM's panel-packed `B` layout, fusing the
/// unroll and the pack into one write pass.
///
/// Produces bit-for-bit the buffer `pack_b_slice_into(im2col(..))` would:
/// `out_h*out_w` columns in `PANEL`-column panels, each panel stored
/// `(c*kh*kw) × PANEL` row-major, tail lanes zero. The separate pack is a
/// full read + write of the column matrix per convolution per forward;
/// emitting packed layout directly deletes that round-trip, which is pure
/// memory bandwidth at batch 1. Every lane of `packed` is written (valid
/// taps, zero margins, zero tail), so no stale scratch survives reuse.
#[allow(clippy::too_many_arguments)]
pub fn im2col_packed_prealloc(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
    packed: &mut Matrix,
) -> TensorResult<()> {
    if image.len() != c * h * w {
        return Err(ShapeError::new(format!(
            "im2col_packed: image length {} != {}x{}x{}",
            image.len(),
            c,
            h,
            w
        )));
    }
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    let n_out = out_h * out_w;
    let k_rows = c * kh * kw;
    let panels = n_out.div_ceil(PANEL);
    packed.resize(panels.max(1), k_rows * PANEL);
    if k_rows == 0 {
        return Ok(());
    }
    let data = packed.as_mut_slice();
    // Same row/run decomposition as `im2col_prealloc`; only the write
    // addressing differs (panel segments instead of one contiguous row).
    for ci in 0..c {
        let ch = &image[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                // Zero the packed tail lanes past the last real column.
                packed_row_segments(n_out, panels * PANEL, k_rows, row, |s, l| {
                    data[s..s + l].fill(0.0)
                });
                let ox_lo = if kx >= pad {
                    0
                } else {
                    (pad - kx).div_ceil(stride).min(out_w)
                };
                let ox_hi = if w + pad <= kx {
                    0
                } else {
                    ((w - 1 + pad - kx) / stride + 1).min(out_w)
                }
                .max(ox_lo);
                for oy in 0..out_h {
                    let col0 = oy * out_w;
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || (iy as usize) >= h {
                        packed_row_segments(col0, col0 + out_w, k_rows, row, |s, l| {
                            data[s..s + l].fill(0.0)
                        });
                        continue;
                    }
                    let src_row = &ch[iy as usize * w..(iy as usize + 1) * w];
                    packed_row_segments(col0, col0 + ox_lo, k_rows, row, |s, l| {
                        data[s..s + l].fill(0.0)
                    });
                    packed_row_segments(col0 + ox_hi, col0 + out_w, k_rows, row, |s, l| {
                        data[s..s + l].fill(0.0)
                    });
                    let base = ox_lo * stride + kx - pad;
                    if stride == 1 {
                        let mut off = 0;
                        packed_row_segments(col0 + ox_lo, col0 + ox_hi, k_rows, row, |s, l| {
                            data[s..s + l].copy_from_slice(&src_row[base + off..base + off + l]);
                            off += l;
                        });
                    } else {
                        let mut idx = 0;
                        packed_row_segments(col0 + ox_lo, col0 + ox_hi, k_rows, row, |s, l| {
                            for d in 0..l {
                                data[s + d] = src_row[base + (idx + d) * stride];
                            }
                            idx += l;
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Fold a column matrix back into an image, **accumulating** overlapping
/// contributions (the adjoint of `im2col`, used by the conv backward pass).
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Matrix,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    pad: usize,
    stride: usize,
) -> TensorResult<Vec<f32>> {
    let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride)?;
    if cols.shape() != (c * kh * kw, out_h * out_w) {
        return Err(ShapeError::new(format!(
            "col2im: cols shape {:?} != {:?}",
            cols.shape(),
            (c * kh * kw, out_h * out_w)
        )));
    }
    let mut image = vec![0.0_f32; c * h * w];
    let n_out = out_h * out_w;
    let data = cols.as_slice();
    for ci in 0..c {
        let ch = &mut image[ci * h * w..(ci + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ci * kh + ky) * kw + kx;
                let col_row = &data[row * n_out..(row + 1) * n_out];
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..out_w {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        ch[iy as usize * w + ix as usize] += col_row[oy * out_w + ox];
                    }
                }
            }
        }
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn out_spatial_basic() {
        // Caffenet conv1: 224x224, k=11, pad=0 (per Figure 1, stride 4 -> 55 needs pad?).
        // AlexNet canonical: 227x227 k11 s4 p0 -> 55. With 224 input, pad 2: (224+4-11)/4+1 = 55.
        assert_eq!(out_spatial(227, 227, 11, 11, 0, 4).unwrap(), (55, 55));
        assert_eq!(out_spatial(224, 224, 11, 11, 2, 4).unwrap(), (55, 55));
        assert_eq!(out_spatial(5, 5, 3, 3, 1, 1).unwrap(), (5, 5));
    }

    #[test]
    fn out_spatial_rejects_degenerate() {
        assert!(out_spatial(5, 5, 3, 3, 0, 0).is_err());
        assert!(out_spatial(2, 2, 3, 3, 0, 1).is_err());
        assert!(out_spatial(5, 5, 0, 3, 0, 1).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: cols == image reshaped.
        let image: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let cols = im2col(&image, 2, 3, 3, 1, 1, 0, 1).unwrap();
        assert_eq!(cols.shape(), (2, 9));
        assert_eq!(cols.as_slice(), image.as_slice());
    }

    #[test]
    fn im2col_known_3x3() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no pad -> 4 cols.
        let image = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let cols = im2col(&image, 1, 3, 3, 2, 2, 0, 1).unwrap();
        assert_eq!(cols.shape(), (4, 4));
        // Patch at (0,0): [1,2,4,5]; (0,1): [2,3,5,6]; (1,0): [4,5,7,8]; (1,1): [5,6,8,9].
        // Row = kernel position, column = patch.
        assert_eq!(cols.row(0), &[1.0, 2.0, 4.0, 5.0]); // top-left of each patch
        assert_eq!(cols.row(1), &[2.0, 3.0, 5.0, 6.0]); // top-right
        assert_eq!(cols.row(2), &[4.0, 5.0, 7.0, 8.0]); // bottom-left
        assert_eq!(cols.row(3), &[5.0, 6.0, 8.0, 9.0]); // bottom-right
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let image = vec![1.0; 4]; // 1x2x2
        let cols = im2col(&image, 1, 2, 2, 3, 3, 1, 1).unwrap();
        assert_eq!(cols.shape(), (9, 4));
        // Center kernel tap (ky=1,kx=1) always lands inside -> all ones.
        assert_eq!(cols.row(4), &[1.0, 1.0, 1.0, 1.0]);
        // Top-left tap only valid for bottom-right output.
        assert_eq!(cols.row(0), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn im2col_rejects_bad_image_len() {
        assert!(im2col(&[0.0; 5], 1, 2, 3, 1, 1, 0, 1).is_err());
    }

    #[test]
    fn col2im_adjoint_counts_overlaps() {
        // ones image; im2col then col2im counts how many patches each pixel is in.
        let image = vec![1.0; 9];
        let cols = im2col(&image, 1, 3, 3, 2, 2, 0, 1).unwrap();
        let back = col2im(&cols, 1, 3, 3, 2, 2, 0, 1).unwrap();
        // Corner pixels appear in 1 patch, edges in 2, center in 4.
        assert_eq!(back, vec![1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]);
    }

    /// The straightforward per-element im2col the fast-path run
    /// decomposition must reproduce exactly.
    #[allow(clippy::too_many_arguments)]
    fn im2col_reference(
        image: &[f32],
        c: usize,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        pad: usize,
        stride: usize,
    ) -> Matrix {
        let (out_h, out_w) = out_spatial(h, w, kh, kw, pad, stride).unwrap();
        Matrix::from_fn(c * kh * kw, out_h * out_w, |row, col| {
            let (ci, rem) = (row / (kh * kw), row % (kh * kw));
            let (ky, kx) = (rem / kw, rem % kw);
            let (oy, ox) = (col / out_w, col % out_w);
            let iy = (oy * stride + ky) as isize - pad as isize;
            let ix = (ox * stride + kx) as isize - pad as isize;
            if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                image[ci * h * w + iy as usize * w + ix as usize]
            } else {
                0.0
            }
        })
    }

    proptest! {
        /// <x, im2col(y)> == <col2im(x), y> — adjointness of the pair,
        /// checked via the count matrix trick on random shapes.
        #[test]
        fn prop_im2col_shape(c in 1usize..4, h in 3usize..8, w in 3usize..8,
                             k in 1usize..4, pad in 0usize..2, stride in 1usize..3) {
            let image = vec![0.5; c * h * w];
            if let Ok((oh, ow)) = out_spatial(h, w, k, k, pad, stride) {
                let cols = im2col(&image, c, h, w, k, k, pad, stride).unwrap();
                prop_assert_eq!(cols.shape(), (c * k * k, oh * ow));
                let back = col2im(&cols, c, h, w, k, k, pad, stride).unwrap();
                prop_assert_eq!(back.len(), image.len());
            }
        }

        /// The run-decomposed fast path (margin zero-fill + contiguous
        /// copy / strided gather) is element-for-element identical to
        /// the per-element reference on arbitrary geometry, ragged
        /// kernels (kh != kw) and pads that exceed the kernel offset.
        #[test]
        fn prop_im2col_matches_reference(
            c in 1usize..4, h in 1usize..10, w in 1usize..10,
            kh in 1usize..5, kw in 1usize..5,
            pad in 0usize..3, stride in 1usize..4,
            seed in 0u64..1000,
        ) {
            prop_assume!(out_spatial(h, w, kh, kw, pad, stride).is_ok());
            let image: Vec<f32> = (0..c * h * w)
                .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 100.0 - 5.0)
                .collect();
            let fast = im2col(&image, c, h, w, kh, kw, pad, stride).unwrap();
            let slow = im2col_reference(&image, c, h, w, kh, kw, pad, stride);
            prop_assert_eq!(fast.shape(), slow.shape());
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        /// The fused unroll+pack emits bit-for-bit the buffer the
        /// two-pass `im2col` → `pack_b_slice_into` pipeline produces,
        /// including zero margins and zero panel-tail lanes — even when
        /// the scratch matrix starts full of stale garbage.
        #[test]
        fn prop_im2col_packed_matches_two_pass(
            c in 1usize..4, h in 1usize..10, w in 1usize..10,
            kh in 1usize..5, kw in 1usize..5,
            pad in 0usize..3, stride in 1usize..4,
            seed in 0u64..1000,
        ) {
            prop_assume!(out_spatial(h, w, kh, kw, pad, stride).is_ok());
            let image: Vec<f32> = (0..c * h * w)
                .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 100.0 - 5.0)
                .collect();
            let cols = im2col(&image, c, h, w, kh, kw, pad, stride).unwrap();
            let (k_rows, n_out) = cols.shape();
            let mut two_pass = Matrix::zeros(1, 1);
            crate::gemm::pack_b_slice_into(cols.as_slice(), k_rows, n_out, &mut two_pass);
            // Poison the fused-path scratch to prove every lane is written.
            let mut fused = Matrix::from_fn(3, 7, |_, _| f32::NAN);
            im2col_packed_prealloc(&image, c, h, w, kh, kw, pad, stride, &mut fused).unwrap();
            prop_assert_eq!(fused.shape(), two_pass.shape());
            for (x, y) in fused.as_slice().iter().zip(two_pass.as_slice().iter()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
