//! Deterministic weight initializers.

use crate::dense::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Xavier/Glorot-uniform initialization for a `rows × cols` weight matrix,
/// seeded for reproducibility. `fan_in`/`fan_out` default to cols/rows.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("length matches by construction")
}

/// Gaussian initialization with the given standard deviation (Caffe's
/// default conv initializer), seeded for reproducibility.
pub fn gaussian(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            // Box–Muller transform.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 6, 42);
        let b = xavier_uniform(4, 6, 42);
        let c = xavier_uniform(4, 6, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_within_bound() {
        let m = xavier_uniform(10, 20, 7);
        let bound = (6.0 / 30.0_f64).sqrt() as f32 + 1e-6;
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn gaussian_roughly_centered() {
        let m = gaussian(100, 100, 0.01, 11);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!((var.sqrt() - 0.01).abs() < 2e-3, "std {}", var.sqrt());
    }
}
