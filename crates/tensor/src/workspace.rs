//! Reusable scratch arenas for allocation-free steady-state kernels.
//!
//! The im2col+GEMM convolution path needs two per-image scratch matrices
//! (the unrolled `cols` patch matrix and the per-group `prod` output
//! panel). Allocating them per image puts the allocator on the critical
//! path of every forward pass; §3 of the paper times exactly these loops,
//! so the harness must not measure `malloc`.
//!
//! A [`Workspace`] owns those scratch slots and resizes them in place
//! ([`Matrix::resize`] reuses capacity), so after the first pass over a
//! given layer shape no allocator calls remain. A [`WorkspacePool`] hands
//! workspaces out to rayon workers: kernels draw one per worker with
//! `for_each_init`-style loops and the pool recycles them across calls,
//! keyed by nothing — any workspace fits any shape because slots grow to
//! the high-water mark of whatever passes through them.

use crate::dense::Matrix;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};

/// Scratch buffers for one in-flight image (or GEMM tile).
///
/// Slots are plain matrices reshaped on demand; contents are zeroed by
/// `resize`, so kernels can rely on a clean accumulator.
#[derive(Debug)]
pub struct Workspace {
    cols: Matrix,
    packed: Matrix,
    prod: Matrix,
    qbuf: Vec<i8>,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// An empty workspace; slots grow on first use.
    pub fn new() -> Self {
        Self {
            cols: Matrix::zeros(0, 0),
            packed: Matrix::zeros(0, 0),
            prod: Matrix::zeros(0, 0),
            qbuf: Vec::new(),
        }
    }

    /// The im2col patch-matrix slot, reshaped to `rows × cols`.
    pub fn cols_slot(&mut self, rows: usize, cols: usize) -> &mut Matrix {
        self.cols.resize(rows, cols);
        &mut self.cols
    }

    /// The GEMM product slot, reshaped to `rows × cols`.
    pub fn prod_slot(&mut self, rows: usize, cols: usize) -> &mut Matrix {
        self.prod.resize(rows, cols);
        &mut self.prod
    }

    /// Both conv scratch slots at once (distinct borrows of one arena).
    pub fn conv_slots(
        &mut self,
        cols_shape: (usize, usize),
        prod_shape: (usize, usize),
    ) -> (&mut Matrix, &mut Matrix) {
        self.cols.resize(cols_shape.0, cols_shape.1);
        self.prod.resize(prod_shape.0, prod_shape.1);
        (&mut self.cols, &mut self.prod)
    }

    /// The conv scratch trio: im2col cols, the panel-packed copy of
    /// cols, and the per-group GEMM product. `packed` is handed back
    /// unshaped — `pack_b_slice_into` resizes it to the panel count —
    /// and `prod` may be `(0, 0)` when the kernel writes the output
    /// buffer directly (ungrouped convolution).
    pub fn conv_gemm_slots(
        &mut self,
        cols_shape: (usize, usize),
        prod_shape: (usize, usize),
    ) -> (&mut Matrix, &mut Matrix, &mut Matrix) {
        self.cols.resize(cols_shape.0, cols_shape.1);
        self.prod.resize(prod_shape.0, prod_shape.1);
        (&mut self.cols, &mut self.packed, &mut self.prod)
    }

    /// The quantized-operand scratch slot: a bare byte vector the int8
    /// quantizers (`quantize_rows_into`, `pack_b_i8_into`) clear and
    /// refill, retaining capacity across checkouts like every other
    /// slot.
    pub fn qbuf_slot(&mut self) -> &mut Vec<i8> {
        &mut self.qbuf
    }

    /// The int8 conv scratch trio: f32 im2col cols, the quantized i8
    /// copy (packed or row-major, kernel's choice — the slot is a bare
    /// byte vector the quantizers resize), and the per-group product.
    /// `prod` may be `(0, 0)` when the kernel writes the output buffer
    /// directly.
    pub fn conv_quant_slots(
        &mut self,
        cols_shape: (usize, usize),
        prod_shape: (usize, usize),
    ) -> (&mut Matrix, &mut Vec<i8>, &mut Matrix) {
        self.cols.resize(cols_shape.0, cols_shape.1);
        self.prod.resize(prod_shape.0, prod_shape.1);
        (&mut self.cols, &mut self.qbuf, &mut self.prod)
    }

    /// Bytes currently live across all slots (lengths, not capacities —
    /// `Matrix` does not expose its backing capacity).
    pub fn reserved_bytes(&self) -> usize {
        (self.cols.len() + self.packed.len() + self.prod.len()) * std::mem::size_of::<f32>()
            + self.qbuf.len()
    }
}

/// A checkout/return pool of [`Workspace`]s shared by rayon workers.
///
/// Layers own one pool each; every `forward` draws however many
/// workspaces the worker count demands (one per worker) and returns them
/// on drop. Steady state therefore holds the pool size at the maximum
/// concurrency ever seen, and no allocation happens after warm-up.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Workspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Draw a workspace, creating one only if the pool is empty.
    ///
    /// Every checkout is counted in the global metrics registry: a
    /// recycled workspace is a `workspace_hits`, a fresh build is a
    /// `workspace_misses` — the steady-state claim "the pool stopped
    /// allocating" is `misses` staying flat while `hits` climbs.
    pub fn checkout(&self) -> PooledWorkspace<'_> {
        let ws = self.draw();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Pop a recycled workspace or build one, recording hit/miss.
    fn draw(&self) -> Workspace {
        match self.free.lock().pop() {
            Some(ws) => {
                cap_obs::metrics().workspace_hits.inc();
                ws
            }
            None => {
                cap_obs::metrics().workspace_misses.inc();
                Workspace::new()
            }
        }
    }

    /// Number of idle workspaces currently in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Ensure at least `n` idle workspaces exist, creating the shortfall
    /// up front.
    ///
    /// Data-parallel callers warm the pool to their worker count before
    /// fanning out, so the first parallel pass draws pre-built
    /// workspaces instead of racing to allocate them under the pool
    /// lock.
    pub fn warm(&self, n: usize) {
        let mut free = self.free.lock();
        while free.len() < n {
            // Pre-building is still a build: count it as a miss so the
            // hit/miss metrics tell the whole allocation story.
            cap_obs::metrics().workspace_misses.inc();
            free.push(Workspace::new());
        }
    }

    /// Draw an *owned* workspace (no lifetime tie to the pool).
    ///
    /// The borrow-guarded [`WorkspacePool::checkout`] is the right call
    /// within one stack frame; `take` is for workers that must move the
    /// workspace across a thread boundary or hold it beyond the pool's
    /// borrow. Pair with [`WorkspacePool::give`] to recycle — a taken
    /// workspace that is never given back is simply dropped, which is
    /// safe but forfeits its grown capacity.
    pub fn take(&self) -> Workspace {
        self.draw()
    }

    /// Return a workspace previously obtained with [`WorkspacePool::take`]
    /// (or built elsewhere) to the idle set.
    pub fn give(&self, ws: Workspace) {
        self.free.lock().push(ws);
    }
}

/// RAII guard for a pooled [`Workspace`]; returns it on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'a> {
    pool: &'a WorkspacePool,
    ws: Option<Workspace>,
}

impl Deref for PooledWorkspace<'_> {
    type Target = Workspace;

    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.free.lock().push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_resize_and_zero() {
        let mut ws = Workspace::new();
        {
            let m = ws.cols_slot(3, 4);
            assert_eq!(m.shape(), (3, 4));
            m.set(1, 1, 5.0);
        }
        // Re-requesting the slot zeroes stale contents.
        let m = ws.cols_slot(3, 4);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn conv_slots_are_independent() {
        let mut ws = Workspace::new();
        let (cols, prod) = ws.conv_slots((2, 3), (4, 5));
        cols.set(0, 0, 1.0);
        prod.set(3, 4, 2.0);
        assert_eq!(cols.shape(), (2, 3));
        assert_eq!(prod.shape(), (4, 5));
    }

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut a = pool.checkout();
            let _ = a.cols_slot(10, 10);
            let _b = pool.checkout();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        {
            // The recycled workspace keeps its grown capacity.
            let mut again = pool.checkout();
            assert!(again.reserved_bytes() == 0 || again.cols_slot(10, 10).len() == 100);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn warm_prebuilds_and_take_give_recycle() {
        let pool = WorkspacePool::new();
        pool.warm(3);
        assert_eq!(pool.idle(), 3);
        // Warming to a smaller count never shrinks the pool.
        pool.warm(1);
        assert_eq!(pool.idle(), 3);
        let mut ws = pool.take();
        assert_eq!(pool.idle(), 2);
        let _ = ws.cols_slot(8, 8);
        pool.give(ws);
        assert_eq!(pool.idle(), 3);
        // The recycled workspace comes back with its grown slot.
        let mut again = pool.take();
        assert_eq!(again.cols_slot(8, 8).len(), 64);
    }

    #[test]
    fn capacity_survives_shrink_and_regrow() {
        let mut ws = Workspace::new();
        let _ = ws.cols_slot(100, 100);
        let _ = ws.cols_slot(2, 2);
        let m = ws.cols_slot(100, 100);
        assert_eq!(m.shape(), (100, 100));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
