//! Numeric-precision selection for the weighted-layer inference path.
//!
//! PR 10 adds a real int8 execution path (symmetric per-tensor weight
//! quantization, calibrated activation scales, integer GEMM/GEMV/SpMM
//! microkernels in [`crate::kernels::int8`]) alongside the default f32
//! path. This module is the knob that picks between them, mirroring the
//! kernel-path machinery in [`crate::kernels`]: the `CAP_TENSOR_PRECISION`
//! environment variable is read once per process — `f32`, `int8`, or
//! `auto` (the default; f32). Unknown values behave as `auto`, never an
//! error: a typo must not silently change numerics.
//!
//! Unlike the kernel path, *both* precisions are available on every CPU
//! (the int8 kernels have a scalar reference path), so there is no
//! availability probe and [`force`] never panics. The resolved selection
//! is published to the `precision_path` metrics gauge the first time a
//! weighted layer asks for it, exactly as kernel resolution publishes
//! `kernel_path`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Numeric precision used by conv/fc (weighted) layers.
///
/// Pooling, softmax and the other shape/activation layers always run in
/// f32 regardless of this knob — int8 applies only where there are
/// weights to quantize, and activations are dequantized back to f32 at
/// each layer boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision f32 kernels — the default and the baseline arm of
    /// the `quantize` ablation experiment.
    F32,
    /// Symmetric int8 kernels with i32 accumulation and
    /// dequantize-in-epilogue (see [`crate::quant`]).
    Int8,
}

impl Precision {
    /// Stable lower-case name as accepted by `CAP_TENSOR_PRECISION`.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Stable numeric code published to the `precision_path` gauge
    /// (0 is "unset"). Must stay in sync with
    /// `cap_obs::precision_path_name`; a test below cross-checks.
    pub fn code(self) -> u8 {
        match self {
            Precision::F32 => 1,
            Precision::Int8 => 2,
        }
    }
}

/// Process-wide forced precision: 0 = none, else `Precision::code()`.
/// Test/ablation hook only — see [`force`].
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Cached resolution of `CAP_TENSOR_PRECISION`.
static SELECTED: OnceLock<Precision> = OnceLock::new();

/// Force every subsequent weighted-layer dispatch to `precision` (or
/// back to the environment-driven selection with `None`).
///
/// This is a **test and ablation hook**, process-global like
/// [`crate::kernels::force`]: the `quantize` experiment and the int8
/// parity suites use it to run both arms inside one process. Unlike the
/// kernel override it can never panic — both precisions exist on every
/// CPU. Concurrent tests asserting on a *specific* precision must
/// serialize around it. The override also re-publishes the
/// `precision_path` gauge so reports stay truthful.
pub fn force(precision: Option<Precision>) {
    FORCED.store(precision.map_or(0, |p| p.code()), Ordering::Relaxed);
    if let Some(p) = precision {
        cap_obs::metrics().precision_path.set(p.code() as u64);
    } else {
        // Restore the gauge to the environment-driven selection so a
        // report built after the override is lifted reads correctly.
        cap_obs::metrics()
            .precision_path
            .set(SELECTED.get_or_init(resolve).code() as u64);
    }
}

/// Parse a `CAP_TENSOR_PRECISION` value. Unknown strings behave as
/// `auto` (= f32): a typo must never silently quantize a model.
fn parse_env(value: &str) -> Precision {
    match value.trim().to_ascii_lowercase().as_str() {
        "int8" => Precision::Int8,
        _ => Precision::F32, // "", "auto", "f32", or anything unrecognized
    }
}

/// Resolve the startup selection from `CAP_TENSOR_PRECISION` and publish
/// it to the `precision_path` gauge.
fn resolve() -> Precision {
    let p = std::env::var("CAP_TENSOR_PRECISION")
        .map(|v| parse_env(&v))
        .unwrap_or(Precision::F32);
    cap_obs::metrics().precision_path.set(p.code() as u64);
    p
}

/// The precision governing this process's weighted layers.
///
/// Resolved once from `CAP_TENSOR_PRECISION` (default f32); after that a
/// single relaxed atomic load plus a cached read. The [`force`]
/// override, when set, wins without touching the cache.
#[inline]
pub fn selected() -> Precision {
    match FORCED.load(Ordering::Relaxed) {
        1 => Precision::F32,
        2 => Precision::Int8,
        _ => *SELECTED.get_or_init(resolve),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_codes_are_stable() {
        // The gauge codes are decoded by cap-obs for reports and the
        // Prometheus exporter; this is the cross-check the two crates
        // rely on.
        for p in [Precision::F32, Precision::Int8] {
            assert_eq!(cap_obs::precision_path_name(p.code() as u64), p.name());
        }
        assert_eq!(cap_obs::precision_path_name(0), "unset");
    }

    #[test]
    fn parse_env_accepts_known_values_and_defaults_to_f32() {
        assert_eq!(parse_env("int8"), Precision::Int8);
        assert_eq!(parse_env(" INT8 "), Precision::Int8);
        assert_eq!(parse_env("f32"), Precision::F32);
        assert_eq!(parse_env("auto"), Precision::F32);
        assert_eq!(parse_env(""), Precision::F32);
        assert_eq!(parse_env("bf16"), Precision::F32);
    }

    #[test]
    fn force_overrides_and_clears() {
        force(Some(Precision::Int8));
        assert_eq!(selected(), Precision::Int8);
        assert_eq!(cap_obs::metrics().precision_path.get(), 2);
        force(Some(Precision::F32));
        assert_eq!(selected(), Precision::F32);
        force(None);
        // Back to env-driven; whatever it is, it must be stable and
        // reflected in the gauge.
        assert_eq!(selected(), selected());
        assert_eq!(
            cap_obs::metrics().precision_path.get(),
            selected().code() as u64
        );
    }
}
