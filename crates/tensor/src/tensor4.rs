//! NCHW 4-dimensional activation tensor.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// A 4-D tensor with Caffe's canonical NCHW layout:
/// `data[((n * C + c) * H + h) * W + w]`.
///
/// `n` indexes the image in the batch, `c` the channel, `h`/`w` the spatial
/// position. Activations flowing between CNN layers are `Tensor4`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Create an all-zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Create a tensor from an NCHW-ordered vector.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> TensorResult<Self> {
        if data.len() != n * c * h * w {
            return Err(ShapeError::new(format!(
                "Tensor4::from_vec: data length {} != {}x{}x{}x{}",
                data.len(),
                n,
                c,
                h,
                w
            )));
        }
        Ok(Self { n, c, h, w, data })
    }

    /// Reshape in place to `n × c × h × w`, reusing the existing allocation.
    ///
    /// All elements are reset to zero. Like [`Matrix::resize`], the backing
    /// `Vec` only grows when the new size exceeds the high-water mark, so a
    /// `Tensor4` used as an activation slot stops allocating once it has
    /// seen the largest shape that flows through it.
    pub fn resize(&mut self, n: usize, c: usize, h: usize, w: usize) {
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.clear();
        self.data.resize(n * c * h * w, 0.0);
    }

    /// Create a tensor by evaluating `f(n, c, h, w)` for every element.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(f(ni, ci, hi, wi));
                    }
                }
            }
        }
        Self { n, c, h, w, data }
    }

    /// Batch size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    #[inline]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Spatial height.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Spatial width.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(n, c, h, w)` shape tuple.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Elements per image (`c * h * w`).
    #[inline]
    pub fn image_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Immutable NCHW data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable NCHW data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor (debug-checked).
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }

    /// Element setter (debug-checked).
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        self.data[((n * self.c + c) * self.h + h) * self.w + w] = v;
    }

    /// Immutable slice covering image `n` (all channels).
    #[inline]
    pub fn image(&self, n: usize) -> &[f32] {
        let len = self.image_len();
        &self.data[n * len..(n + 1) * len]
    }

    /// Mutable slice covering image `n` (all channels).
    #[inline]
    pub fn image_mut(&mut self, n: usize) -> &mut [f32] {
        let len = self.image_len();
        &mut self.data[n * len..(n + 1) * len]
    }

    /// Flatten to an `n × (c*h*w)` matrix (used by fully-connected layers).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.image_len(), self.data.clone())
            .expect("Tensor4 data length always matches n * image_len")
    }

    /// Rebuild a tensor from an `n × (c*h*w)` matrix.
    pub fn from_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> TensorResult<Self> {
        if m.cols() != c * h * w {
            return Err(ShapeError::new(format!(
                "Tensor4::from_matrix: cols {} != {}x{}x{}",
                m.cols(),
                c,
                h,
                w
            )));
        }
        Self::from_vec(m.rows(), c, h, w, m.as_slice().to_vec())
    }

    /// Maximum absolute difference to a same-shaped tensor.
    pub fn max_abs_diff(&self, other: &Tensor4) -> TensorResult<f32> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "max_abs_diff: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_nchw() {
        let t = Tensor4::from_fn(2, 3, 4, 5, |n, c, h, w| {
            (n * 1000 + c * 100 + h * 10 + w) as f32
        });
        // Stride checks: w fastest, then h, then c, then n.
        assert_eq!(t.as_slice()[0], 0.0);
        assert_eq!(t.as_slice()[1], 1.0); // w+1
        assert_eq!(t.as_slice()[5], 10.0); // h+1
        assert_eq!(t.as_slice()[20], 100.0); // c+1
        assert_eq!(t.as_slice()[60], 1000.0); // n+1
        assert_eq!(t.get(1, 2, 3, 4), 1234.0);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Tensor4::from_vec(1, 2, 3, 4, vec![0.0; 23]).is_err());
        assert!(Tensor4::from_vec(1, 2, 3, 4, vec![0.0; 24]).is_ok());
    }

    #[test]
    fn matrix_roundtrip() {
        let t = Tensor4::from_fn(3, 2, 2, 2, |n, c, h, w| (n + c + h + w) as f32);
        let m = t.to_matrix();
        assert_eq!(m.shape(), (3, 8));
        let back = Tensor4::from_matrix(&m, 2, 2, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn from_matrix_rejects_bad_cols() {
        let m = Matrix::zeros(2, 7);
        assert!(Tensor4::from_matrix(&m, 2, 2, 2).is_err());
    }

    #[test]
    fn image_slices_partition_data() {
        let t = Tensor4::from_fn(2, 1, 2, 2, |n, _, _, _| n as f32);
        assert!(t.image(0).iter().all(|&v| v == 0.0));
        assert!(t.image(1).iter().all(|&v| v == 1.0));
        assert_eq!(t.image(0).len() + t.image(1).len(), t.len());
    }
}
