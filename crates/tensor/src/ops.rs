//! Elementwise and rowwise operations: ReLU, softmax, LRN helpers.

use crate::dense::Matrix;
use crate::kernels;

/// In-place ReLU over a slice: `v = if v < 0.0 { 0.0 } else { v }`
/// (NaN and `-0.0` pass through unchanged, on every kernel path).
pub fn relu_inplace(data: &mut [f32]) {
    kernels::relu_inplace(data);
}

/// Out-of-place ReLU: `dst[i] = if src[i] > 0.0 { src[i] } else { 0.0 }`
/// over `min(src.len(), dst.len())` elements (NaN and `-0.0` flush to
/// `+0.0`, on every kernel path).
pub fn relu_into(src: &[f32], dst: &mut [f32]) {
    kernels::relu_into(src, dst);
}

/// ReLU derivative mask: 1.0 where the forward input was positive.
pub fn relu_mask(forward_input: &[f32]) -> Vec<f32> {
    forward_input
        .iter()
        .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
        .collect()
}

/// Numerically stable softmax over one logit slice, in place.
pub fn softmax_inplace(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in logits.iter_mut() {
            *v /= sum;
        }
    }
}

/// Rowwise softmax over a matrix (one row per sample).
pub fn softmax_rows(m: &mut Matrix) {
    let rows = m.rows();
    for r in 0..rows {
        softmax_inplace(m.row_mut(r));
    }
}

/// Indices of the `k` largest values in `row`, descending.
/// Ties break toward the lower index, matching `argsort` stability.
pub fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx
}

/// Cross-entropy loss of a softmax probability row against a class label.
/// Probabilities are clamped away from zero for numerical robustness.
pub fn cross_entropy(probs: &[f32], label: usize) -> f32 {
    -probs[label].max(1e-12).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_mask_matches() {
        assert_eq!(relu_mask(&[-1.0, 0.0, 3.0]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_inplace(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn top_k_orders_descending() {
        let row = vec![0.1, 0.7, 0.05, 0.15];
        assert_eq!(top_k_indices(&row, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&row, 10), vec![1, 3, 0, 2]);
    }

    #[test]
    fn cross_entropy_low_for_confident_correct() {
        assert!(cross_entropy(&[0.01, 0.99], 1) < 0.1);
        assert!(cross_entropy(&[0.99, 0.01], 1) > 1.0);
        // Zero probability doesn't produce inf.
        assert!(cross_entropy(&[1.0, 0.0], 1).is_finite());
    }

    proptest! {
        #[test]
        fn prop_softmax_is_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
            let mut s = v.clone();
            softmax_inplace(&mut s);
            let total: f32 = s.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn prop_softmax_shift_invariant(v in proptest::collection::vec(-10.0f32..10.0, 1..10), shift in -5.0f32..5.0) {
            let mut a = v.clone();
            let mut b: Vec<f32> = v.iter().map(|x| x + shift).collect();
            softmax_inplace(&mut a);
            softmax_inplace(&mut b);
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
