//! 2-D convolution kernels: im2col+GEMM (Caffe's scheme), a direct
//! sliding-window reference, and a sparse-weight variant for pruned layers.

use crate::dense::Matrix;
use crate::error::{ShapeError, TensorResult};
use crate::gemm::{gemm_packed_cols_fused, gemm_prealloc};
use crate::im2col::{im2col_packed_prealloc, im2col_prealloc, out_spatial};
use crate::kernels::{EpiBias, Epilogue};
use crate::sparse::CsrMatrix;
use crate::tensor4::Tensor4;
use crate::workspace::WorkspacePool;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Start a clock for the GEMM/im2col time split, only when timed
/// metrics are on (`timing` is hoisted out of the parallel image loop).
#[inline]
pub(crate) fn split_clock(timing: bool) -> Option<Instant> {
    if timing {
        Some(Instant::now())
    } else {
        None
    }
}

/// Credit elapsed time since `t0` to `counter` (no-op when timing off).
#[inline]
pub(crate) fn credit_ns(t0: Option<Instant>, counter: &cap_obs::Counter) {
    if let Some(t0) = t0 {
        counter.add(t0.elapsed().as_nanos() as u64);
    }
}

/// Geometry of a 2-D convolution.
///
/// `groups` implements AlexNet/Caffenet-style grouped convolution: input
/// and output channels are split into `groups` equal slices convolved
/// independently (Caffenet conv2/4/5 use `groups = 2`, which is why
/// Table 1 lists conv2 filters as `5×5×48` against a 96-channel input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of filters).
    pub out_channels: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Channel groups.
    pub groups: usize,
}

impl Conv2dParams {
    /// Convenience constructor for an ungrouped convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        pad: usize,
        stride: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kh: k,
            kw: k,
            pad,
            stride,
            groups: 1,
        }
    }

    /// Same, with channel groups.
    pub fn grouped(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        pad: usize,
        stride: usize,
        groups: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kh: k,
            kw: k,
            pad,
            stride,
            groups,
        }
    }

    /// Input channels per group.
    pub fn in_per_group(&self) -> usize {
        self.in_channels / self.groups.max(1)
    }

    /// Output channels per group.
    pub fn out_per_group(&self) -> usize {
        self.out_channels / self.groups.max(1)
    }

    /// Weight element count: `out_channels × in_per_group × kh × kw`.
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_per_group() * self.kh * self.kw
    }

    /// Output spatial shape for an `h×w` input.
    pub fn out_shape(&self, h: usize, w: usize) -> TensorResult<(usize, usize)> {
        out_spatial(h, w, self.kh, self.kw, self.pad, self.stride)
    }

    /// Validate structural invariants (divisibility by groups, non-zero dims).
    pub fn validate(&self) -> TensorResult<()> {
        if self.groups == 0 {
            return Err(ShapeError::new("conv: groups must be >= 1"));
        }
        if !self.in_channels.is_multiple_of(self.groups)
            || !self.out_channels.is_multiple_of(self.groups)
        {
            return Err(ShapeError::new(format!(
                "conv: channels ({} in, {} out) not divisible by groups {}",
                self.in_channels, self.out_channels, self.groups
            )));
        }
        if self.in_channels == 0 || self.out_channels == 0 {
            return Err(ShapeError::new("conv: channel counts must be >= 1"));
        }
        Ok(())
    }

    /// Multiply–accumulate count for one image
    /// (`2 × macs` gives FLOPs; the CNN crate's FLOP model builds on this).
    pub fn macs(&self, h: usize, w: usize) -> TensorResult<u64> {
        let (oh, ow) = self.out_shape(h, w)?;
        Ok(self.out_channels as u64
            * oh as u64
            * ow as u64
            * self.in_per_group() as u64
            * self.kh as u64
            * self.kw as u64)
    }
}

fn check_weights(params: &Conv2dParams, weights: &Matrix) -> TensorResult<()> {
    params.validate()?;
    let expected = (
        params.out_channels,
        params.in_per_group() * params.kh * params.kw,
    );
    if weights.shape() != expected {
        return Err(ShapeError::new(format!(
            "conv: weights {:?}, expected {:?}",
            weights.shape(),
            expected
        )));
    }
    Ok(())
}

fn check_input(params: &Conv2dParams, input: &Tensor4) -> TensorResult<()> {
    if input.c() != params.in_channels {
        return Err(ShapeError::new(format!(
            "conv: input channels {} != {}",
            input.c(),
            params.in_channels
        )));
    }
    Ok(())
}

fn check_bias(params: &Conv2dParams, bias: Option<&[f32]>) -> TensorResult<()> {
    if let Some(b) = bias {
        if b.len() != params.out_channels {
            return Err(ShapeError::new(format!(
                "conv: bias length {} != out_channels {}",
                b.len(),
                params.out_channels
            )));
        }
    }
    Ok(())
}

/// Convolution via im2col + GEMM — the production path, matching Caffe.
///
/// `weights` is `out_channels × (in_per_group*kh*kw)`; `bias`, when given,
/// has one entry per output channel. Images in the batch are processed in
/// parallel.
pub fn conv2d_gemm(
    input: &Tensor4,
    weights: &Matrix,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> TensorResult<Tensor4> {
    check_weights(params, weights)?;
    check_input(params, input)?;
    check_bias(params, bias)?;
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    let mut out = Tensor4::zeros(n, params.out_channels, oh, ow);

    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    let n_out = oh * ow;
    let out_image_len = params.out_channels * n_out;

    let images: Vec<&[f32]> = (0..n).map(|i| input.image(i)).collect();
    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(images.into_par_iter())
        .try_for_each(|(out_img, in_img)| -> TensorResult<()> {
            let mut cols = Matrix::zeros(col_rows, n_out);
            let mut prod = Matrix::zeros(opg, n_out);
            for g in 0..params.groups {
                let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                im2col_prealloc(
                    in_slice,
                    cpg,
                    h,
                    w,
                    params.kh,
                    params.kw,
                    params.pad,
                    params.stride,
                    &mut cols,
                )?;
                // Weight rows for this group form a contiguous band.
                let wg = Matrix::from_vec(
                    opg,
                    col_rows,
                    weights.as_slice()[g * opg * col_rows..(g + 1) * opg * col_rows].to_vec(),
                )?;
                gemm_prealloc(&wg, &cols, &mut prod)?;
                let dst = &mut out_img[g * opg * n_out..(g + 1) * opg * n_out];
                dst.copy_from_slice(prod.as_slice());
            }
            if let Some(b) = bias {
                for (oc, bval) in b.iter().enumerate() {
                    for v in &mut out_img[oc * n_out..(oc + 1) * n_out] {
                        *v += bval;
                    }
                }
            }
            Ok(())
        })?;
    Ok(out)
}

/// Convolution with CSR-sparse weights — the pruned-layer fast path.
///
/// Identical contract to [`conv2d_gemm`] but the filter matrix is sparse;
/// cost scales with stored weights, which is how pruning turns into
/// wall-clock savings.
pub fn conv2d_sparse(
    input: &Tensor4,
    weights: &CsrMatrix,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> TensorResult<Tensor4> {
    params.validate()?;
    check_input(params, input)?;
    check_bias(params, bias)?;
    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    if weights.shape() != (params.out_channels, col_rows) {
        return Err(ShapeError::new(format!(
            "conv_sparse: weights {:?}, expected {:?}",
            weights.shape(),
            (params.out_channels, col_rows)
        )));
    }
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    let n_out = oh * ow;
    let mut out = Tensor4::zeros(n, params.out_channels, oh, ow);
    let out_image_len = params.out_channels * n_out;

    // Pre-split the CSR weights per group (cheap: index arithmetic only).
    let dense = weights.to_dense();
    let group_csr: Vec<CsrMatrix> = (0..params.groups)
        .map(|g| {
            let band = Matrix::from_vec(
                opg,
                col_rows,
                dense.as_slice()[g * opg * col_rows..(g + 1) * opg * col_rows].to_vec(),
            )
            .expect("band slice has exactly opg*col_rows elements");
            CsrMatrix::from_dense(&band, 0.0)
        })
        .collect();

    let images: Vec<&[f32]> = (0..n).map(|i| input.image(i)).collect();
    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(images.into_par_iter())
        .try_for_each(|(out_img, in_img)| -> TensorResult<()> {
            let mut cols = Matrix::zeros(col_rows, n_out);
            for (g, wg) in group_csr.iter().enumerate() {
                let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                im2col_prealloc(
                    in_slice,
                    cpg,
                    h,
                    w,
                    params.kh,
                    params.kw,
                    params.pad,
                    params.stride,
                    &mut cols,
                )?;
                let prod = wg.matmul_dense(&cols)?;
                out_img[g * opg * n_out..(g + 1) * opg * n_out].copy_from_slice(prod.as_slice());
            }
            if let Some(b) = bias {
                for (oc, bval) in b.iter().enumerate() {
                    for v in &mut out_img[oc * n_out..(oc + 1) * n_out] {
                        *v += bval;
                    }
                }
            }
            Ok(())
        })?;
    Ok(out)
}

/// Dense convolution weights pre-split into per-group GEMM bands.
///
/// [`conv2d_gemm`] re-slices and copies the group band out of the flat
/// weight matrix for every image of every call; for Caffenet's grouped
/// layers that is a fresh `O(weights)` allocation per image. Packing once
/// at layer construction removes it from the steady state entirely.
#[derive(Debug, Clone)]
pub struct PackedConvWeights {
    bands: Vec<Matrix>,
}

impl PackedConvWeights {
    /// Split `weights` (`out_channels × in_per_group*kh*kw`) by group.
    pub fn pack(weights: &Matrix, params: &Conv2dParams) -> TensorResult<Self> {
        check_weights(params, weights)?;
        let opg = params.out_per_group();
        let col_rows = params.in_per_group() * params.kh * params.kw;
        let bands = (0..params.groups)
            .map(|g| {
                Matrix::from_vec(
                    opg,
                    col_rows,
                    weights.as_slice()[g * opg * col_rows..(g + 1) * opg * col_rows].to_vec(),
                )
            })
            .collect::<TensorResult<Vec<_>>>()?;
        Ok(Self { bands })
    }

    /// Number of groups.
    #[inline]
    pub fn groups(&self) -> usize {
        self.bands.len()
    }

    /// Weight band for group `g` (`out_per_group × in_per_group*kh*kw`).
    #[inline]
    pub fn band(&self, g: usize) -> &Matrix {
        &self.bands[g]
    }
}

/// Sparse convolution weights pre-split into per-group CSR bands.
///
/// Replaces [`conv2d_sparse`]'s per-call `to_dense()` + re-conversion:
/// the CSR is split by rows directly (index arithmetic only, done once).
#[derive(Debug, Clone)]
pub struct PackedSparseConvWeights {
    bands: Vec<CsrMatrix>,
}

impl PackedSparseConvWeights {
    /// Split CSR `weights` (`out_channels × in_per_group*kh*kw`) by group.
    pub fn pack(weights: &CsrMatrix, params: &Conv2dParams) -> TensorResult<Self> {
        params.validate()?;
        let col_rows = params.in_per_group() * params.kh * params.kw;
        if weights.shape() != (params.out_channels, col_rows) {
            return Err(ShapeError::new(format!(
                "conv pack: sparse weights {:?}, expected {:?}",
                weights.shape(),
                (params.out_channels, col_rows)
            )));
        }
        Ok(Self {
            bands: weights.split_rows(params.out_per_group())?,
        })
    }

    /// Number of groups.
    #[inline]
    pub fn groups(&self) -> usize {
        self.bands.len()
    }

    /// CSR weight band for group `g`.
    #[inline]
    pub fn band(&self, g: usize) -> &CsrMatrix {
        &self.bands[g]
    }
}

/// im2col+GEMM convolution with pre-packed weights and pooled scratch —
/// the zero-allocation steady-state path.
///
/// Numerically identical to [`conv2d_gemm`] (same kernels, same
/// accumulation order); differs only in where buffers come from: weight
/// bands are pre-split in `weights`, the `cols`/`prod` scratch matrices
/// come from `pool` (one workspace per rayon worker), and the output is
/// written into `out`, which is reshaped in place (reusing capacity).
pub fn conv2d_gemm_packed(
    input: &Tensor4,
    weights: &PackedConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
) -> TensorResult<()> {
    conv2d_gemm_packed_fused(input, weights, bias, params, pool, out, false)
}

/// [`conv2d_gemm_packed`] with the bias add and an optional ReLU fused
/// into the GEMM store.
///
/// The bias is applied through the kernel epilogue as one `f32` add per
/// element — the same operation [`conv2d_gemm_packed`]'s separate bias
/// pass performs — and `relu` appends the `forward_into`-flavor ReLU,
/// so the output makes one round-trip through memory instead of up to
/// three. Bitwise identical to the unfused convolution followed by a
/// standalone ReLU layer, on every bit-identical kernel path.
pub fn conv2d_gemm_packed_fused(
    input: &Tensor4,
    weights: &PackedConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
    relu: bool,
) -> TensorResult<()> {
    params.validate()?;
    check_input(params, input)?;
    check_bias(params, bias)?;
    if weights.groups() != params.groups {
        return Err(ShapeError::new(format!(
            "conv packed: {} weight bands, expected {} groups",
            weights.groups(),
            params.groups
        )));
    }
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    out.resize(n, params.out_channels, oh, ow);

    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    let n_out = oh * ow;
    let out_image_len = params.out_channels * n_out;
    let in_image_len = params.in_channels * h * w;

    // One relaxed load outside the parallel loop decides whether the
    // GEMM/im2col split is measured for this call.
    let timing = cap_obs::timing_enabled();

    // Pair output and input images by chunking both flat buffers — no
    // per-call Vec of image slices, keeping the steady state allocation-free.
    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(input.as_slice().par_chunks(in_image_len.max(1)))
        .try_for_each_init(
            || pool.checkout(),
            |ws, (out_img, in_img)| -> TensorResult<()> {
                // Ungrouped convs write GEMM output straight into the
                // output image, so the prod slot stays empty.
                let prod_shape = if params.groups == 1 {
                    (0, 0)
                } else {
                    (opg, n_out)
                };
                // The dense path unrolls straight into panel-packed
                // layout, so the row-major cols slot stays empty.
                let (_cols, packed, prod) = ws.conv_gemm_slots((0, 0), prod_shape);
                for g in 0..params.groups {
                    let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                    // Fused unroll+pack: emit the GEMM's panel layout
                    // directly instead of writing a row-major column
                    // matrix and re-copying it panel-packed — one write
                    // pass over the activations instead of a write plus
                    // a full read+write (see `im2col_packed_prealloc`).
                    let t_col = split_clock(timing);
                    im2col_packed_prealloc(
                        in_slice,
                        cpg,
                        h,
                        w,
                        params.kh,
                        params.kw,
                        params.pad,
                        params.stride,
                        packed,
                    )?;
                    credit_ns(t_col, &cap_obs::metrics().im2col_time_ns);
                    let t_gemm = split_clock(timing);
                    let band = weights.band(g);
                    // Bias and ReLU ride the GEMM store: `bias[g*opg + r]`
                    // is the per-output-channel bias of GEMM row `r`, so
                    // the group's bias slice is a per-row epilogue.
                    let epi = Epilogue {
                        bias: bias.map(|b| EpiBias::PerRow(&b[g * opg..(g + 1) * opg])),
                        relu,
                    };
                    if params.groups == 1 {
                        gemm_packed_cols_fused(
                            band.as_slice(),
                            opg,
                            col_rows,
                            n_out,
                            packed.as_slice(),
                            out_img,
                            epi,
                        )?;
                    } else {
                        gemm_packed_cols_fused(
                            band.as_slice(),
                            opg,
                            col_rows,
                            n_out,
                            packed.as_slice(),
                            prod.as_mut_slice(),
                            epi,
                        )?;
                        let dst = &mut out_img[g * opg * n_out..(g + 1) * opg * n_out];
                        dst.copy_from_slice(prod.as_slice());
                    }
                    credit_ns(t_gemm, &cap_obs::metrics().gemm_time_ns);
                }
                Ok(())
            },
        )?;
    Ok(())
}

/// CSR-sparse convolution with pre-split group bands and pooled scratch.
///
/// The zero-allocation counterpart of [`conv2d_sparse`]: no per-call
/// densify/re-sparsify, no per-image `cols`/`prod` allocation.
pub fn conv2d_sparse_packed(
    input: &Tensor4,
    weights: &PackedSparseConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
) -> TensorResult<()> {
    conv2d_sparse_packed_fused(input, weights, bias, params, pool, out, false)
}

/// [`conv2d_sparse_packed`] with bias and an optional ReLU fused into
/// the SpMM row store — the sparse counterpart of
/// [`conv2d_gemm_packed_fused`], with the same bitwise-identity
/// contract versus the unfused convolution + ReLU pair.
pub fn conv2d_sparse_packed_fused(
    input: &Tensor4,
    weights: &PackedSparseConvWeights,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
    pool: &WorkspacePool,
    out: &mut Tensor4,
    relu: bool,
) -> TensorResult<()> {
    params.validate()?;
    check_input(params, input)?;
    check_bias(params, bias)?;
    if weights.groups() != params.groups {
        return Err(ShapeError::new(format!(
            "conv sparse packed: {} weight bands, expected {} groups",
            weights.groups(),
            params.groups
        )));
    }
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    out.resize(n, params.out_channels, oh, ow);

    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    let col_rows = cpg * params.kh * params.kw;
    let n_out = oh * ow;
    let out_image_len = params.out_channels * n_out;
    let in_image_len = params.in_channels * h * w;

    let timing = cap_obs::timing_enabled();

    // Chunk both flat buffers — no per-call Vec of image slices.
    out.as_mut_slice()
        .par_chunks_mut(out_image_len.max(1))
        .zip(input.as_slice().par_chunks(in_image_len.max(1)))
        .try_for_each_init(
            || pool.checkout(),
            |ws, (out_img, in_img)| -> TensorResult<()> {
                let (cols, prod) = ws.conv_slots((col_rows, n_out), (opg, n_out));
                for g in 0..params.groups {
                    let in_slice = &in_img[g * cpg * h * w..(g + 1) * cpg * h * w];
                    let t_col = split_clock(timing);
                    im2col_prealloc(
                        in_slice,
                        cpg,
                        h,
                        w,
                        params.kh,
                        params.kw,
                        params.pad,
                        params.stride,
                        cols,
                    )?;
                    credit_ns(t_col, &cap_obs::metrics().im2col_time_ns);
                    // Sparse×dense multiply is the GEMM of this path;
                    // bias/ReLU ride its row stores (CSR rows are this
                    // group's output channels, so the group bias slice
                    // is the per-row bias).
                    let t_gemm = split_clock(timing);
                    weights.band(g).matmul_dense_into_fused(
                        cols,
                        prod,
                        bias.map(|b| &b[g * opg..(g + 1) * opg]),
                        relu,
                    )?;
                    credit_ns(t_gemm, &cap_obs::metrics().gemm_time_ns);
                    out_img[g * opg * n_out..(g + 1) * opg * n_out]
                        .copy_from_slice(prod.as_slice());
                }
                Ok(())
            },
        )?;
    Ok(())
}

/// Direct (sliding-window) convolution — correctness oracle and the
/// baseline arm of the `conv_strategy` ablation bench.
pub fn conv2d_direct(
    input: &Tensor4,
    weights: &Matrix,
    bias: Option<&[f32]>,
    params: &Conv2dParams,
) -> TensorResult<Tensor4> {
    check_weights(params, weights)?;
    check_input(params, input)?;
    check_bias(params, bias)?;
    let (n, _c, h, w) = input.shape();
    let (oh, ow) = params.out_shape(h, w)?;
    let mut out = Tensor4::zeros(n, params.out_channels, oh, ow);
    let cpg = params.in_per_group();
    let opg = params.out_per_group();
    for ni in 0..n {
        for oc in 0..params.out_channels {
            let g = oc / opg;
            let wrow = weights.row(oc);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.map_or(0.0, |b| b[oc]);
                    for icg in 0..cpg {
                        let ic = g * cpg + icg;
                        for ky in 0..params.kh {
                            let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..params.kw {
                                let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let wv = wrow[(icg * params.kh + ky) * params.kw + kx];
                                acc += wv * input.get(ni, ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    out.set(ni, oc, oy, ox, acc);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn det_input(n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        Tensor4::from_fn(n, c, h, w, |ni, ci, hi, wi| {
            (((ni * 7 + ci * 5 + hi * 3 + wi) % 11) as f32 - 5.0) / 5.0
        })
    }

    fn det_weights(params: &Conv2dParams, seed: usize) -> Matrix {
        Matrix::from_fn(
            params.out_channels,
            params.in_per_group() * params.kh * params.kw,
            |r, c| ((((r + seed) * 13 + c * 7) % 9) as f32 - 4.0) / 4.0,
        )
    }

    #[test]
    fn gemm_matches_direct_ungrouped() {
        let params = Conv2dParams::new(3, 8, 3, 1, 2);
        let input = det_input(2, 3, 9, 9);
        let weights = det_weights(&params, 1);
        let bias: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let a = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();
        let b = conv2d_direct(&input, &weights, Some(&bias), &params).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn gemm_matches_direct_grouped() {
        let params = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
        let input = det_input(2, 4, 7, 7);
        let weights = det_weights(&params, 2);
        let a = conv2d_gemm(&input, &weights, None, &params).unwrap();
        let b = conv2d_direct(&input, &weights, None, &params).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn sparse_matches_dense() {
        let params = Conv2dParams::grouped(4, 6, 3, 1, 1, 2);
        let input = det_input(3, 4, 6, 6);
        let mut weights = det_weights(&params, 3);
        // Zero out ~half the weights to make it genuinely sparse.
        for (i, v) in weights.as_mut_slice().iter_mut().enumerate() {
            if i % 2 == 0 {
                *v = 0.0;
            }
        }
        let csr = CsrMatrix::from_dense(&weights, 0.0);
        let bias = vec![0.5; 6];
        let dense_out = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();
        let sparse_out = conv2d_sparse(&input, &csr, Some(&bias), &params).unwrap();
        assert!(dense_out.max_abs_diff(&sparse_out).unwrap() < 1e-4);
    }

    #[test]
    fn identity_1x1_conv() {
        // 1x1 conv with identity weight matrix passes channels through.
        let params = Conv2dParams::new(3, 3, 1, 0, 1);
        let input = det_input(1, 3, 4, 4);
        let weights = Matrix::identity(3);
        let out = conv2d_gemm(&input, &weights, None, &params).unwrap();
        assert!(out.max_abs_diff(&input).unwrap() < 1e-6);
    }

    #[test]
    fn bias_only_applied_per_channel() {
        let params = Conv2dParams::new(1, 2, 1, 0, 1);
        let input = Tensor4::zeros(1, 1, 2, 2);
        let weights = Matrix::zeros(2, 1);
        let bias = vec![1.5, -2.5];
        let out = conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap();
        assert!(out.image(0)[..4].iter().all(|&v| v == 1.5));
        assert!(out.image(0)[4..].iter().all(|&v| v == -2.5));
    }

    #[test]
    fn validates_shapes() {
        let params = Conv2dParams::new(3, 8, 3, 1, 1);
        let input = det_input(1, 4, 6, 6); // wrong channels
        let weights = det_weights(&params, 0);
        assert!(conv2d_gemm(&input, &weights, None, &params).is_err());

        let input = det_input(1, 3, 6, 6);
        let bad_weights = Matrix::zeros(8, 26); // wrong cols
        assert!(conv2d_gemm(&input, &bad_weights, None, &params).is_err());
        assert!(conv2d_gemm(&input, &weights, Some(&[0.0; 7]), &params).is_err());
    }

    #[test]
    fn validates_groups() {
        let params = Conv2dParams::grouped(3, 8, 3, 1, 1, 2); // 3 % 2 != 0
        assert!(params.validate().is_err());
        let params = Conv2dParams::grouped(4, 8, 3, 1, 1, 0);
        assert!(params.validate().is_err());
    }

    #[test]
    fn macs_counts_caffenet_conv1() {
        // Caffenet conv1: 224x224x3 in, 96 filters 11x11, stride 4, pad 2 -> 55x55.
        let p = Conv2dParams::new(3, 96, 11, 2, 4);
        let macs = p.macs(224, 224).unwrap();
        assert_eq!(macs, 96 * 55 * 55 * 3 * 11 * 11);
    }

    proptest! {
        #[test]
        fn prop_gemm_matches_direct(
            c in 1usize..4, oc_half in 1usize..3, k in 1usize..4,
            pad in 0usize..2, stride in 1usize..3, h in 4usize..8,
        ) {
            let params = Conv2dParams::new(c, oc_half * 2, k, pad, stride);
            let input = det_input(1, c, h, h);
            let weights = det_weights(&params, 5);
            let a = conv2d_gemm(&input, &weights, None, &params).unwrap();
            let b = conv2d_direct(&input, &weights, None, &params).unwrap();
            prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
        }
    }
}
