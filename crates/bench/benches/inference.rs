//! End-to-end inference throughput of the implemented CNN framework:
//! TinyNet batches and single Caffenet / Googlenet forward passes.

use cap_cnn::models::{caffenet, googlenet, TinyNet, WeightInit};
use cap_cnn::network::ForwardArena;
use cap_data::SyntheticImageNet;
use cap_tensor::Tensor4;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_tinynet(c: &mut Criterion) {
    let data = SyntheticImageNet::tiny(5);
    let net = TinyNet::new(data.image_shape, 8, 12, data.classes, 3).unwrap();
    let (x, _) = data.batch(0, 64);
    c.bench_function("tinynet_batch64_dense", |b| {
        b.iter(|| net.logits(&x).unwrap())
    });
    c.bench_function("tinynet_batch64_sparse_path", |b| {
        b.iter(|| net.logits_sparse(&x).unwrap())
    });
}

fn bench_big_models(c: &mut Criterion) {
    let input = Tensor4::from_fn(1, 3, 224, 224, |_, ci, h, w| {
        ((ci * 7 + h + w) % 9) as f32 / 9.0 - 0.5
    });
    let caffe = caffenet(WeightInit::Gaussian { std: 0.01, seed: 1 }).unwrap();
    let mut group = c.benchmark_group("full_models");
    group.sample_size(10);
    group.bench_function("caffenet_single_forward", |b| {
        b.iter(|| caffe.forward(&input).unwrap())
    });
    let goog = googlenet(WeightInit::Gaussian { std: 0.01, seed: 2 }).unwrap();
    group.bench_function("googlenet_single_forward", |b| {
        b.iter(|| goog.forward(&input).unwrap())
    });
    group.finish();
}

/// The PR's headline workload: batched dense Caffenet inference via the
/// allocating `forward` (one fresh tensor per layer per pass) versus
/// `forward_into` through one long-lived [`ForwardArena`].
fn bench_batched_caffenet(c: &mut Criterion) {
    let batch = Tensor4::from_fn(4, 3, 224, 224, |n, ci, h, w| {
        ((n * 13 + ci * 7 + h + w) % 9) as f32 / 9.0 - 0.5
    });
    let caffe = caffenet(WeightInit::Gaussian { std: 0.01, seed: 1 }).unwrap();
    let mut group = c.benchmark_group("batched_inference");
    group.sample_size(10);
    group.bench_function("caffenet_batch4_forward", |b| {
        b.iter(|| caffe.forward(&batch).unwrap())
    });
    let mut arena = ForwardArena::new();
    group.bench_function("caffenet_batch4_arena", |b| {
        b.iter(|| caffe.forward_into(&batch, &mut arena).unwrap().as_slice()[0])
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tinynet, bench_big_models, bench_batched_caffenet
}
criterion_main!(benches);
