//! Cost of the pruning algorithms themselves on realistic layer sizes —
//! pruning is an offline step in the paper, but its cost bounds how many
//! degrees of pruning a consumer can explore.

use cap_pruning::{prune_filters_l1, prune_magnitude, prune_structured};
use cap_tensor::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn layer(rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 7) % 101) as f32 / 101.0 - 0.5
    })
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_caffenet_conv2_shape");
    // conv2: 256 x 1200.
    let base = layer(256, 1200);
    for ratio in [0.3f64, 0.7] {
        group.bench_with_input(
            BenchmarkId::new("magnitude", format!("{ratio}")),
            &ratio,
            |b, &r| {
                b.iter_batched(
                    || base.clone(),
                    |mut w| prune_magnitude(&mut w, r).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("filter_l1", format!("{ratio}")),
            &ratio,
            |b, &r| {
                b.iter_batched(
                    || base.clone(),
                    |mut w| prune_filters_l1(&mut w, r).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("structured", format!("{ratio}")),
            &ratio,
            |b, &r| {
                b.iter_batched(
                    || base.clone(),
                    |mut w| prune_structured(&mut w, r).unwrap(),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pruning
}
criterion_main!(benches);
