//! Microkernel dispatch ablation: the same packed GEMM, CSR SpMM, and
//! elementwise workloads under each available `cap_tensor::kernels`
//! path, forced explicitly so Criterion isolates the kernel effect
//! from everything else (DESIGN.md §6 kernel dispatch).

use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{gemm_prepacked, CsrMatrix, Matrix, PackedB, Pool2dParams, Tensor4};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn mat(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + salt) % 29) as f32 - 14.0) / 15.0
    })
}

/// Run `body` with the dispatcher pinned to `path`, restoring auto
/// selection afterwards so benches don't leak state into each other.
fn forced<T>(path: KernelPath, body: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = body();
    kernels::force(None);
    out
}

fn bench_kernel_paths(c: &mut Criterion) {
    // Caffenet conv2-like GEMM: 256 filters x 1200 taps x 729 pixels.
    let a = mat(256, 1200, 1);
    let packed = PackedB::pack(&mat(1200, 729, 2));
    let mut out = Matrix::zeros(256, 729);
    let mut group = c.benchmark_group("kernel_gemm_256x1200x729");
    for path in kernels::available_paths() {
        group.bench_function(BenchmarkId::from_parameter(path.name()), |b| {
            forced(path, || {
                b.iter(|| gemm_prepacked(&a, &packed, &mut out).unwrap())
            })
        });
    }
    group.finish();

    // 90%-pruned conv2 weights through the CSR row kernel.
    let sparse_w = Matrix::from_fn(256, 1200, |r, cc| {
        if (r * 1200 + cc) % 10 == 0 {
            (((r * 13 + cc * 7) % 23) as f32 - 11.0) / 12.0
        } else {
            0.0
        }
    });
    let csr = CsrMatrix::from_dense(&sparse_w, 0.0);
    let b_dense = mat(1200, 729, 3);
    let mut spmm_out = Matrix::zeros(256, 729);
    let mut group = c.benchmark_group("kernel_spmm_90pct_256x1200x729");
    for path in kernels::available_paths() {
        group.bench_function(BenchmarkId::from_parameter(path.name()), |b| {
            forced(path, || {
                b.iter(|| csr.matmul_dense_into(&b_dense, &mut spmm_out).unwrap())
            })
        });
    }
    group.finish();

    // Elementwise + pooling on a conv1-sized activation map (96x55x55).
    let acts = Tensor4::from_fn(1, 96, 55, 55, |_, cc, h, w| {
        (((cc * 31 + h * 7 + w) % 19) as f32 - 9.0) / 6.0
    });
    let pool = Pool2dParams::new(3, 0, 2);
    let (oh, ow) = pool.out_shape(55, 55).unwrap();
    let mut pooled = Tensor4::zeros(1, 96, oh, ow);
    let mut group = c.benchmark_group("kernel_elementwise_96x55x55");
    for path in kernels::available_paths() {
        let mut buf = acts.clone();
        group.bench_function(BenchmarkId::new("relu", path.name()), |b| {
            forced(path, || {
                b.iter(|| {
                    buf.as_mut_slice().copy_from_slice(acts.as_slice());
                    cap_tensor::ops::relu_inplace(buf.as_mut_slice());
                })
            })
        });
        group.bench_function(BenchmarkId::new("maxpool3s2", path.name()), |b| {
            forced(path, || {
                b.iter(|| cap_tensor::max_pool2d_into(&acts, &pool, &mut pooled).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel_paths
}
criterion_main!(benches);
