//! Sort-based Pareto filter vs naive O(n²) dominance check — the filter
//! sits on the explorer's hot path for large configuration spaces.

use cap_core::pareto::{pareto_indices, pareto_indices_naive, ParetoPoint};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn points(n: usize) -> Vec<ParetoPoint> {
    (0..n)
        .map(|i| {
            let h = (i * 2654435761) % 1_000_003;
            ParetoPoint {
                accuracy: (h % 1000) as f64 / 1000.0,
                objective: ((h / 1000) % 1000) as f64,
            }
        })
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_filter");
    for n in [100usize, 1000, 10_000] {
        let pts = points(n);
        group.bench_with_input(BenchmarkId::new("sorted_sweep", n), &pts, |b, pts| {
            b.iter(|| pareto_indices(pts))
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("naive_n2", n), &pts, |b, pts| {
                b.iter(|| pareto_indices_naive(pts))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pareto
}
criterion_main!(benches);
