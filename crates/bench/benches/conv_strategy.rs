//! im2col+GEMM vs direct sliding-window convolution — the Caffe-lowering
//! ablation (DESIGN.md §9).

use cap_tensor::{
    conv2d_direct, conv2d_gemm, conv2d_gemm_packed, conv2d_sparse, conv2d_sparse_packed,
    Conv2dParams, CsrMatrix, Matrix, PackedConvWeights, PackedSparseConvWeights, Tensor4,
    WorkspacePool,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_conv(c: &mut Criterion) {
    // A conv3-like layer at reduced channel count for bench runtime.
    let params = Conv2dParams::new(64, 96, 3, 1, 1);
    let input = Tensor4::from_fn(1, 64, 13, 13, |_, ci, h, w| {
        ((ci + h * 2 + w) % 11) as f32 / 11.0 - 0.5
    });
    let weights = Matrix::from_fn(96, 64 * 9, |r, cc| ((r * 7 + cc) % 9) as f32 / 9.0 - 0.4);
    let bias = vec![0.1_f32; 96];

    let mut group = c.benchmark_group("conv_13x13x64_to_96");
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| conv2d_gemm(&input, &weights, Some(&bias), &params).unwrap())
    });
    group.bench_function("direct", |b| {
        b.iter(|| conv2d_direct(&input, &weights, Some(&bias), &params).unwrap())
    });
    // Sparse at 70 % pruning.
    let mut sparse_w = weights.clone();
    for (i, v) in sparse_w.as_mut_slice().iter_mut().enumerate() {
        if i % 10 < 7 {
            *v = 0.0;
        }
    }
    let csr = CsrMatrix::from_dense(&sparse_w, 0.0);
    group.bench_function("sparse_csr_70pct", |b| {
        b.iter(|| conv2d_sparse(&input, &csr, Some(&bias), &params).unwrap())
    });
    // Steady-state variants: weights pre-split into per-group bands at
    // layer construction, im2col/GEMM scratch drawn from a workspace
    // pool, output tensor reused across calls.
    let packed = PackedConvWeights::pack(&weights, &params).unwrap();
    let pool = WorkspacePool::new();
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    group.bench_function("im2col_gemm_packed", |b| {
        b.iter(|| {
            conv2d_gemm_packed(&input, &packed, Some(&bias), &params, &pool, &mut out).unwrap()
        })
    });
    let packed_csr = PackedSparseConvWeights::pack(&csr, &params).unwrap();
    group.bench_function("sparse_csr_70pct_packed", |b| {
        b.iter(|| {
            conv2d_sparse_packed(&input, &packed_csr, Some(&bias), &params, &pool, &mut out)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conv
}
criterion_main!(benches);
