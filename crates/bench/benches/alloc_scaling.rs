//! Algorithm 1 (TAR/CAR greedy) vs exhaustive subset search across pool
//! sizes — the §4.5.3 complexity result as a measured benchmark.

use cap_cloud::{catalog, InstanceType};
use cap_core::{
    allocate, caffenet_version_grid, exhaustive_search, AccuracyMetric, AllocationRequest,
};
use cap_pruning::caffenet_profile;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn pool(g_size: usize) -> Vec<InstanceType> {
    let cat = catalog();
    (0..g_size)
        .map(|i| {
            if i % 2 == 0 {
                cat[0].clone()
            } else {
                cat[3].clone()
            }
        })
        .collect()
}

fn bench_alloc(c: &mut Criterion) {
    let versions = caffenet_version_grid(&caffenet_profile());
    let mut group = c.benchmark_group("allocation");
    for g_size in [4usize, 8, 12] {
        let p = pool(g_size);
        group.bench_with_input(BenchmarkId::new("greedy_tar_car", g_size), &p, |b, p| {
            b.iter(|| {
                allocate(
                    &versions,
                    p,
                    &AllocationRequest {
                        w: 200_000,
                        batch: 512,
                        deadline_s: 4.0 * 3600.0,
                        budget_usd: 60.0,
                        metric: AccuracyMetric::Top1,
                    },
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("exhaustive_2_pow_g", g_size),
            &p,
            |b, p| {
                b.iter(|| {
                    exhaustive_search(
                        &versions,
                        p,
                        200_000,
                        512,
                        4.0 * 3600.0,
                        60.0,
                        AccuracyMetric::Top1,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alloc
}
criterion_main!(benches);
