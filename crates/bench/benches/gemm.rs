//! Dense vs CSR-sparse GEMM across sparsity levels — locates the
//! break-even point that justifies the sparse-Caffe substrate
//! (DESIGN.md §9 ablation).

use cap_tensor::{gemm, gemm_prepacked, CsrMatrix, Matrix, PackedB};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn weight_matrix(rows: usize, cols: usize, sparsity_pct: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = (r * 31 + c * 17) % 100;
        if h < sparsity_pct {
            0.0
        } else {
            (h as f32 - 50.0) / 50.0
        }
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_256x1200_x_729");
    // Caffenet conv2-like dimensions: 256 filters, 1200 taps, 27x27 output.
    let activations = Matrix::from_fn(1200, 729, |r, q| ((r + q) % 13) as f32 / 13.0 - 0.5);
    for sparsity in [0usize, 30, 50, 70, 90] {
        let w = weight_matrix(256, 1200, sparsity);
        group.bench_with_input(BenchmarkId::new("dense", sparsity), &w, |b, w| {
            b.iter(|| gemm(w, &activations).unwrap())
        });
        let csr = CsrMatrix::from_dense(&w, 0.0);
        group.bench_with_input(BenchmarkId::new("sparse_csr", sparsity), &csr, |b, csr| {
            b.iter(|| csr.matmul_dense(&activations).unwrap())
        });
        // Pack-once/run-many: the B panels are packed outside the loop
        // (as an FC layer packs its transposed weights at construction)
        // and the output buffer is reused, so the steady state is
        // allocation-free.
        let packed = PackedB::pack(&activations);
        let mut out = Matrix::zeros(w.rows(), activations.cols());
        group.bench_with_input(BenchmarkId::new("dense_prepacked", sparsity), &w, |b, w| {
            b.iter(|| gemm_prepacked(w, &packed, &mut out).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm
}
criterion_main!(benches);
