//! Intra-network DAG-parallel ablation under Criterion: the same
//! mini-inception batch-1 forward with the node scheduler forced off
//! vs on, plus an explicit worker-count sweep, so Criterion isolates
//! the schedule-overlap effect from everything else (DESIGN.md §10).
//! Batch 1 is the arm that matters: data-parallel chunking cannot
//! speed up a single request, only overlapping independent branches
//! inside the pass can.

use cap_bench::experiments::dagpar_exp::{mini_inception, one_image};
use cap_cnn::dag::{self, DagMode};
use cap_cnn::{DagExecutor, ForwardArena};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Run `body` with the DAG mode pinned, restoring the environment-driven
/// selection afterwards.
fn forced<T>(mode: DagMode, body: impl FnOnce() -> T) -> T {
    dag::force(Some(mode));
    let out = body();
    dag::force(None);
    out
}

fn bench_dagpar(c: &mut Criterion) {
    let net = mini_inception();
    let img = one_image();

    let mut group = c.benchmark_group("dagpar_forward_batch1");
    for mode in [DagMode::Off, DagMode::On] {
        group.bench_function(BenchmarkId::from_parameter(mode.name()), |b| {
            forced(mode, || {
                let mut arena = ForwardArena::new();
                // Warm once on this mode: plan build, packing, arenas.
                net.forward_into(&img, &mut arena).unwrap();
                b.iter(|| {
                    net.forward_into(&img, &mut arena).unwrap();
                })
            })
        });
    }
    for workers in [2usize, 4] {
        group.bench_function(BenchmarkId::new("executor", workers), |b| {
            let exec = DagExecutor::new(workers);
            let mut arena = ForwardArena::new();
            exec.run(&net, &img, &mut arena).unwrap();
            b.iter(|| {
                exec.run(&net, &img, &mut arena).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dagpar
}
criterion_main!(benches);
