//! Parallel inference engine throughput: sequential `run_batched`
//! versus `ParallelEngine` at increasing worker counts on the
//! mini-Caffenet batch-8 workload (the `scalingm` experiment's shape).
//!
//! On a multi-core host the 2- and 4-worker arms should beat the
//! sequential arm; on a single core they expose the engine's scheduling
//! overhead instead — both are worth tracking.

use cap_bench::experiments::scaling_exp::{mini_caffenet, workload};
use cap_cnn::{run_batched, ParallelEngine};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_parallel_engine(c: &mut Criterion) {
    let net = mini_caffenet();
    let imgs = workload();
    let mut group = c.benchmark_group("parallel_engine");
    group.sample_size(10);

    group.bench_function("sequential_batch8", |b| {
        b.iter(|| run_batched(&net, &imgs, 8).unwrap().0)
    });
    for workers in [1usize, 2, 4] {
        let engine = ParallelEngine::new(workers);
        // Warm the per-worker arenas so steady state is measured.
        let _ = engine.run_batched(&net, &imgs, 8).unwrap();
        group.bench_function(format!("engine_{workers}w_batch8"), |b| {
            b.iter(|| engine.run_batched(&net, &imgs, 8).unwrap().0)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_engine
}
criterion_main!(benches);
