//! Int8 quantized-kernel ablation: f32 packed GEMM vs the int8 path
//! (runtime activation quantize + int8 GEMM) under each dispatch path,
//! plus the bare activation-quantize overhead that separates the two
//! (DESIGN.md §12 int8 execution model).

use cap_tensor::kernels::{self, Epilogue, KernelPath};
use cap_tensor::{
    gemm_i8, gemm_prepacked, quantize_rows_into, symmetric_scale, Matrix, PackedB, PackedBI8,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn mat(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + salt) % 29) as f32 - 14.0) / 15.0
    })
}

/// Run `body` with the dispatcher pinned to `path`, restoring auto
/// selection afterwards so benches don't leak state into each other.
fn forced<T>(path: KernelPath, body: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = body();
    kernels::force(None);
    out
}

fn bench_shape(c: &mut Criterion, group_name: &str, m: usize, k: usize, n: usize) {
    let a = mat(m, k, 1);
    let b = mat(k, n, 2);
    let pb_f32 = PackedB::pack(&b);
    let pb_i8 = PackedBI8::pack(&b, symmetric_scale(b.as_slice()));
    let a_scale = symmetric_scale(a.as_slice());
    let mut c_out = Matrix::zeros(m, n);
    let mut group = c.benchmark_group(group_name);
    for path in kernels::available_paths() {
        group.bench_function(BenchmarkId::new("f32", path.name()), |bch| {
            forced(path, || {
                bch.iter(|| gemm_prepacked(&a, &pb_f32, &mut c_out).unwrap())
            })
        });
        let mut qa: Vec<i8> = Vec::new();
        group.bench_function(BenchmarkId::new("int8", path.name()), |bch| {
            forced(path, || {
                bch.iter(|| {
                    let kp = quantize_rows_into(a.as_slice(), m, k, 1.0 / a_scale, &mut qa);
                    gemm_i8(
                        &qa,
                        m,
                        kp,
                        n,
                        pb_i8.data(),
                        c_out.as_mut_slice(),
                        pb_i8.scale() * a_scale,
                        Epilogue::NONE,
                    )
                    .unwrap()
                })
            })
        });
    }
    group.finish();
}

fn bench_quantize_paths(c: &mut Criterion) {
    // Caffenet conv2-like GEMM (the band kernel) and a batch-1 FC
    // slice (the GEMV route).
    bench_shape(c, "quantize_gemm_256x1200x729", 256, 1200, 729);
    bench_shape(c, "quantize_gemv_1x4096x1000", 1, 4096, 1000);

    // The activation quantize alone: the per-call overhead the int8 arm
    // pays before its GEMM starts.
    let a = mat(256, 1200, 1);
    let inv = 1.0 / symmetric_scale(a.as_slice());
    let mut qa: Vec<i8> = Vec::new();
    c.bench_function("quantize_rows_256x1200", |bch| {
        bch.iter(|| quantize_rows_into(a.as_slice(), 256, 1200, inv, &mut qa))
    });
}

criterion_group!(benches, bench_quantize_paths);
criterion_main!(benches);
