//! Layer-fusion ablation under Criterion: the same mini-Caffenet
//! forward with the graph-level `conv → relu` / `fc → relu` fusion
//! pass forced off vs on, so Criterion isolates the fusion effect from
//! everything else (DESIGN.md §6c). Batch 1 is the memory-bound
//! headline arm; batch 8 shows the compute-bound regime where the
//! epilogue savings amortize differently.

use cap_bench::experiments::scaling_exp::{mini_caffenet, workload};
use cap_cnn::fusion::{self, FusionMode};
use cap_cnn::run_batched;
use cap_tensor::Tensor4;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Run `body` with the fusion pass pinned to `mode`, restoring the
/// environment-driven selection afterwards.
fn forced<T>(mode: FusionMode, body: impl FnOnce() -> T) -> T {
    fusion::force(Some(mode));
    let out = body();
    fusion::force(None);
    out
}

fn bench_fusion(c: &mut Criterion) {
    let net = mini_caffenet();
    let one = Tensor4::from_fn(1, 3, 64, 64, |_, ch, h, w| {
        ((ch * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
    });
    let eight = workload();

    for (group_name, imgs, batch) in [
        ("fusion_forward_batch1", &one, 1usize),
        ("fusion_forward_batch8", &eight, 8usize),
    ] {
        let mut group = c.benchmark_group(group_name);
        for mode in [FusionMode::Off, FusionMode::On] {
            group.bench_function(BenchmarkId::from_parameter(mode.name()), |b| {
                forced(mode, || {
                    // Warm once on this mode: plan build, packing, arenas.
                    run_batched(&net, imgs, batch).unwrap();
                    b.iter(|| run_batched(&net, imgs, batch).unwrap())
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fusion
}
criterion_main!(benches);
