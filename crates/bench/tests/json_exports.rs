//! Every hand-rolled JSON exporter in the observability stack must
//! emit output a real JSON parser accepts — including the hostile
//! cases (quotes and backslashes in names, control characters, empty
//! inputs, non-finite means).

use cap_obs::{
    chrome_trace_json, CollectingTracer, MetricsRegistry, ProfileReport, SpanInfo, SpanScope,
    Tracer,
};
use serde::Value;
use std::time::Duration;

fn assert_parses(json: &str, what: &str) -> Value {
    match serde_json::from_str::<Value>(json) {
        Ok(v) => v,
        Err(e) => panic!("{what} is not valid JSON: {e:?}\n{json}"),
    }
}

#[test]
fn metrics_snapshot_json_is_valid_empty_and_populated() {
    let reg = MetricsRegistry::default();
    // Empty registry: all quantiles null, means zero.
    let v = assert_parses(&reg.snapshot().to_json(), "empty MetricsSnapshot");
    let lat = serde::map_field(&v, "forward_latency_us").unwrap();
    assert!(matches!(serde::map_field(lat, "p50").unwrap(), Value::Null));

    reg.forward_passes.add(2);
    reg.forward_latency_us.record(777);
    reg.forward_latency_us.record(12_345_678);
    reg.batch_sizes.record(0); // zero bucket
    reg.arena_bytes.record_max(u64::MAX / 2); // huge gauge
    let v = assert_parses(&reg.snapshot().to_json(), "populated MetricsSnapshot");
    let lat = serde::map_field(&v, "forward_latency_us").unwrap();
    match serde::map_field(lat, "count").unwrap() {
        Value::UInt(2) | Value::Int(2) => {}
        other => panic!("count should be 2, got {other:?}"),
    }
    assert!(!matches!(
        serde::map_field(lat, "p99").unwrap(),
        Value::Null
    ));
}

#[test]
fn profile_report_json_is_valid_with_hostile_names() {
    let t = CollectingTracer::new();
    let mut info = SpanInfo::new(SpanScope::Layer, "conv\"1\\weird");
    info.kind = "conv";
    t.span_exit(&info, Duration::from_micros(100));
    let report = ProfileReport::from_spans("label \"quoted\"", &t.take_spans());
    let v = assert_parses(&report.to_json(), "ProfileReport");
    match serde::map_field(&v, "label").unwrap() {
        Value::Str(s) => assert_eq!(s, "label \"quoted\""),
        other => panic!("label should be a string, got {other:?}"),
    }
}

#[test]
fn chrome_trace_json_is_valid_with_control_chars() {
    let t = CollectingTracer::new();
    t.span_exit(
        &SpanInfo::new(SpanScope::Layer, "tab\there\nnewline"),
        Duration::from_micros(10),
    );
    let json = chrome_trace_json(&t.take_spans());
    let v = assert_parses(&json, "chrome trace");
    let Value::Seq(events) = serde::map_field(&v, "traceEvents").unwrap() else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty());

    // Empty trace parses too.
    assert_parses(&chrome_trace_json(&[]), "empty chrome trace");
}

#[test]
fn sentinel_baseline_json_is_valid() {
    // Pure-policy check (no workload): a synthetic run's baseline file
    // parses; the real run's file is checked in sentinel_gate.rs.
    use cap_bench::experiments::sentinel::{MetricKind, SentinelMetric, SentinelRun};
    let run = SentinelRun {
        metrics: vec![SentinelMetric {
            name: "forward_passes",
            value: 24.0,
            kind: MetricKind::Strict,
            rel_tol: 0.0,
        }],
        report: String::new(),
    };
    let v = assert_parses(&run.baseline_json(), "sentinel baseline");
    match serde::map_field(&v, "schema").unwrap() {
        Value::Str(s) => assert_eq!(s, cap_bench::experiments::sentinel::SCHEMA),
        other => panic!("schema should be a string, got {other:?}"),
    }
}
