//! Chrome-trace round trip: spans collected from a real parallel run
//! are exported with [`chrome_trace_json`], re-parsed with an actual
//! JSON parser, and checked structurally — event count, layer names,
//! per-tid track assignment, and nesting by time containment (every
//! layer event fits inside a forward event on the same thread track,
//! every forward inside its worker span).

use cap_cnn::layer::{ConvLayer, InnerProductLayer, ReluLayer, SoftmaxLayer};
use cap_cnn::network::Network;
use cap_cnn::{CollectingTracer, ParallelEngine};
use cap_obs::chrome_trace_json;
use cap_tensor::{init::xavier_uniform, Conv2dParams, Tensor4};
use serde::Value;
use std::collections::HashMap;

fn small_net() -> Network {
    let mut net = Network::new("trace-net", (3, 9, 9));
    net.add_sequential(Box::new(
        ConvLayer::new(
            "conv1",
            Conv2dParams::new(3, 6, 3, 1, 2),
            xavier_uniform(6, 27, 3),
            vec![0.0; 6],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu1")))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc", xavier_uniform(4, 6 * 5 * 5, 5), vec![0.0; 4]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();
    net
}

/// One parsed `"ph":"X"` event.
struct Event {
    name: String,
    cat: String,
    ts: f64,
    dur: f64,
    tid: u64,
}

fn parse_events(json: &str) -> (Vec<Event>, HashMap<u64, String>) {
    let root: Value = serde_json::from_str(json).expect("trace must be valid JSON");
    let Value::Seq(events) = serde::map_field(&root, "traceEvents").unwrap() else {
        panic!("traceEvents must be an array");
    };
    let mut complete = Vec::new();
    let mut tracks = HashMap::new();
    for e in events {
        let ph = str_of(serde::map_field(e, "ph").unwrap());
        let tid = u64_of(serde::map_field(e, "tid").unwrap());
        match ph.as_str() {
            "X" => complete.push(Event {
                name: str_of(serde::map_field(e, "name").unwrap()),
                cat: str_of(serde::map_field(e, "cat").unwrap()),
                ts: f64_of(serde::map_field(e, "ts").unwrap()),
                dur: f64_of(serde::map_field(e, "dur").unwrap()),
                tid,
            }),
            "M" => {
                assert_eq!(str_of(serde::map_field(e, "name").unwrap()), "thread_name");
                let args = serde::map_field(e, "args").unwrap();
                tracks.insert(tid, str_of(serde::map_field(args, "name").unwrap()));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    (complete, tracks)
}

fn str_of(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn u64_of(v: &Value) -> u64 {
    match v {
        Value::UInt(u) => *u,
        Value::Int(i) => u64::try_from(*i).unwrap(),
        other => panic!("expected integer, got {other:?}"),
    }
}

fn f64_of(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::UInt(u) => *u as f64,
        Value::Int(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn parallel_trace_round_trips_with_nesting_by_tid() {
    // Pin the graph-level fusion pass off: under `auto` the executor
    // absorbs relu1 into conv1's epilogue (DESIGN.md §6c) and emits no
    // relu1 span — this test is about trace round-tripping, so it runs
    // the unfused plan where every layer has its own event. (Fused
    // span naming is covered by the profile tests.)
    cap_cnn::fusion::force(Some(cap_cnn::fusion::FusionMode::Off));
    let net = small_net();
    let tracer = CollectingTracer::new();
    let engine = ParallelEngine::new(3);
    let imgs = Tensor4::from_fn(12, 3, 9, 9, |n, c, h, w| {
        (((n * 41 + c * 13 + h * 5 + w) % 19) as f32 - 9.0) / 7.0
    });
    engine
        .run_batched_traced(&net, &imgs, 4, &tracer)
        .expect("traced parallel run");
    let spans = tracer.take_spans();
    let json = chrome_trace_json(&spans);

    let (events, tracks) = parse_events(&json);

    // Count: one X event per span, one metadata event per distinct tid.
    assert_eq!(events.len(), spans.len());
    let distinct_tids: std::collections::HashSet<u64> = spans.iter().map(|s| s.tid).collect();
    assert_eq!(tracks.len(), distinct_tids.len());

    // Names survive: all four layers, the network, and the workers.
    for name in ["conv1", "relu1", "fc", "prob", "trace-net", "worker"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "missing event {name:?} in trace"
        );
    }

    // Worker tracks are labelled worker-<index>; 12 images at batch 4
    // on 3 workers means all three are active.
    for w in 0..3 {
        assert!(
            tracks.values().any(|label| label == &format!("worker-{w}")),
            "missing worker-{w} track label, have {tracks:?}"
        );
    }

    // Nesting by time containment per tid track: every layer event lies
    // within a forward event on the same tid, and every forward event
    // within the worker event on the same tid. (Containment — not mere
    // overlap — is exactly what makes the viewer stack them.) Start
    // offsets are derived from separate clock reads at span exit, so a
    // few microseconds of skew are tolerated.
    const SKEW_US: f64 = 50.0;
    let contains = |outer: &Event, inner: &Event| {
        outer.ts <= inner.ts + SKEW_US && inner.ts + inner.dur <= outer.ts + outer.dur + SKEW_US
    };
    for layer in events.iter().filter(|e| e.cat == "layer") {
        assert!(
            events
                .iter()
                .filter(|e| e.cat == "forward" && e.tid == layer.tid)
                .any(|fwd| contains(fwd, layer)),
            "layer event {:?} (tid {}) not contained in any forward span on its track",
            layer.name,
            layer.tid
        );
    }
    for fwd in events.iter().filter(|e| e.cat == "forward") {
        assert!(
            events
                .iter()
                .filter(|e| e.cat == "worker" && e.tid == fwd.tid)
                .any(|wk| contains(wk, fwd)),
            "forward event (tid {}) not contained in its worker span",
            fwd.tid
        );
    }

    // And workers never share a track: one worker event per tid.
    let mut worker_tids: Vec<u64> = events
        .iter()
        .filter(|e| e.cat == "worker")
        .map(|e| e.tid)
        .collect();
    worker_tids.sort_unstable();
    worker_tids.dedup();
    assert_eq!(worker_tids.len(), 3, "each worker on its own tid track");
}

/// Serve-trace round trip: virtual-timestamp lifecycle spans from a
/// real router run re-parse into a timeline with one labelled track
/// per tenant (plus the router worker tracks), and virtual timestamps
/// are exact — compute spans on one worker track tile without overlap,
/// and every span's end stays within the run's makespan.
#[test]
fn serve_trace_round_trips_with_per_tenant_tracks() {
    use cap_serve::{fleet, generate_trace, ArrivalPattern, Router, RouterConfig};

    let tenants = vec![
        fleet::pruned_tenant("dense", 1, 0.0),
        fleet::pruned_tenant("pruned-60", 2, 0.6),
    ];
    let n_tenants = tenants.len();
    let mut router = Router::new(
        RouterConfig {
            workers: 2,
            ..RouterConfig::default()
        },
        tenants,
    );
    let trace = generate_trace(
        77,
        &[
            ArrivalPattern::Poisson { rate_per_s: 700.0 },
            ArrivalPattern::Poisson { rate_per_s: 900.0 },
        ],
        0.25,
    );
    let pool = fleet::demo_images(6);
    let tracer = CollectingTracer::new();
    let report = router
        .serve_trace_traced(&trace, &[pool.clone(), pool], &tracer)
        .expect("traced serve run");
    let spans = tracer.take_spans();
    let json = chrome_trace_json(&spans);

    let (events, tracks) = parse_events(&json);
    assert_eq!(events.len(), spans.len());

    // One labelled track per tenant, plus serve-worker tracks.
    for t in &report.tenants {
        assert!(
            tracks.values().any(|l| l == &format!("tenant-{}", t.name)),
            "missing tenant track for {:?}, have {tracks:?}",
            t.name
        );
    }
    assert!(
        tracks.values().any(|l| l == "serve-worker-0"),
        "missing serve-worker-0 track, have {tracks:?}"
    );
    let tenant_tracks = tracks.values().filter(|l| l.starts_with("tenant-")).count();
    assert_eq!(tenant_tracks, n_tenants, "exactly one track per tenant");

    // Span census matches the report.
    let count = |cat: &str| events.iter().filter(|e| e.cat == cat).count() as u64;
    assert_eq!(count("request"), report.completed);
    assert_eq!(count("queue_wait"), report.completed);
    assert_eq!(count("batch_assembly"), report.batches);
    assert_eq!(count("serve_compute"), report.batches);

    // Virtual timestamps are exact (no clock skew): per worker track,
    // compute spans sorted by ts are strictly sequential — each batch
    // starts at or after the previous one finishes — i.e. per-track
    // timestamps are monotonic and non-overlapping.
    for (tid, label) in &tracks {
        if !label.starts_with("serve-worker-") {
            continue;
        }
        let mut compute: Vec<&Event> = events
            .iter()
            .filter(|e| e.cat == "serve_compute" && e.tid == *tid)
            .collect();
        assert!(!compute.is_empty(), "idle worker track {label}");
        compute.sort_by(|a, b| a.ts.partial_cmp(&b.ts).unwrap());
        for pair in compute.windows(2) {
            assert!(
                pair[0].ts + pair[0].dur <= pair[1].ts + 1e-9,
                "overlapping compute spans on {label}: {} + {} > {}",
                pair[0].ts,
                pair[0].dur,
                pair[1].ts
            );
        }
    }

    // Every span ends within the virtual makespan.
    let makespan = report.makespan_us as f64;
    for e in &events {
        assert!(
            e.ts + e.dur <= makespan + 1e-6,
            "span {:?} ends at {} past makespan {makespan}",
            e.name,
            e.ts + e.dur
        );
    }
}
