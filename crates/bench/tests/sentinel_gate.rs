//! End-to-end sentinel gate tests on the real workload. These run in
//! their own test process, serialized by a mutex, because the sentinel
//! reads the process-global metrics registry — a concurrent workload
//! would corrupt the strict counters it asserts on.

use cap_bench::experiments::sentinel::{run_workload, MetricKind};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Two back-to-back runs agree on every strict metric — the
/// determinism the hard CI gate stands on — and a run held against its
/// own baseline is clean.
#[test]
fn strict_metrics_are_deterministic_across_runs() {
    let _guard = SERIAL.lock().unwrap();
    let a = run_workload();
    let b = run_workload();
    assert_eq!(a.metrics.len(), b.metrics.len());
    for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
        assert_eq!(ma.name, mb.name);
        if ma.kind == MetricKind::Strict {
            assert_eq!(
                ma.value, mb.value,
                "strict metric {} drifted between identical runs",
                ma.name
            );
        }
    }
    let cmp = b.compare(&a.baseline_json()).unwrap();
    assert_eq!(cmp.strict_violations, 0, "{}", cmp.report);
}

/// The real workload produces sensible numbers: the expected pass
/// count, all-8 batches, non-empty latency quantiles.
#[test]
fn workload_metrics_are_plausible() {
    let _guard = SERIAL.lock().unwrap();
    let run = run_workload();
    let get = |name: &str| {
        run.metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .value
    };
    // 4 sequential runs + 2 engine runs, 4 chunks each (32 imgs / 8).
    assert_eq!(get("forward_passes"), 24.0);
    assert_eq!(get("batch_p50"), 8.0);
    assert!(get("arena_bytes") > 0.0);
    assert!(get("workspace_checkouts") > 0.0);
    assert!(get("forward_latency_p50_us") > 0.0);
    assert!(get("forward_latency_p99_us") >= get("forward_latency_p50_us"));
    assert!(run.report.contains("sentinel"));
}
