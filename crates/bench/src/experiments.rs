//! Experiment registry: every table and figure of the paper's
//! evaluation, regenerated from this reproduction.

mod ablation;
mod algorithm;
mod characterization;
pub mod dagpar_exp;
mod extensions;
mod frontier;
mod fusion_exp;
mod kernels_exp;
mod measured;
mod metrics_exp;
pub mod profile;
mod quantize_exp;
pub mod scaling_exp;
mod sensitivity;
pub mod sentinel;
pub mod serve_exp;
mod tables;

/// An experiment: id, one-line description, generator.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// The registry, in paper order.
pub const EXPERIMENTS: &[Experiment] = &[
    (
        "table1",
        "Caffenet layer shapes and filters",
        tables::table1,
    ),
    ("table3", "Amazon EC2 cloud resource types", tables::table3),
    (
        "fig3",
        "Caffenet execution time distribution across layers",
        characterization::fig3,
    ),
    (
        "profile",
        "Per-layer ProfileReport (tracer-driven): Caffenet at 0% and 60% pruning",
        profile::profile_caffenet,
    ),
    (
        "fig4",
        "Time for a single inference vs uniform prune ratio",
        characterization::fig4,
    ),
    (
        "fig5",
        "Parallel inference saturation on a GPU",
        characterization::fig5,
    ),
    (
        "fig6",
        "Caffenet single-layer pruning: time and accuracy",
        sensitivity::fig6,
    ),
    (
        "fig7",
        "Googlenet single-layer pruning (six selected layers)",
        sensitivity::fig7,
    ),
    (
        "fig8",
        "Caffenet multi-layer pruning (nonpruned / conv1-2 / all-conv)",
        sensitivity::fig8,
    ),
    (
        "fig9",
        "Time-accuracy configuration space under a 10 h deadline",
        frontier::fig9,
    ),
    (
        "fig10",
        "Cost-accuracy configuration space under a $300 budget",
        frontier::fig10,
    ),
    (
        "fig11",
        "TAR over the conv1 x conv2 sweet-spot grid",
        metrics_exp::fig11,
    ),
    (
        "fig12",
        "CAR across resource types (one GPU vs all GPUs)",
        metrics_exp::fig12,
    ),
    (
        "alg1",
        "Algorithm 1 (TAR/CAR greedy) vs exhaustive search",
        algorithm::alg1,
    ),
    (
        "headline",
        "Headline savings at highest achievable accuracy",
        algorithm::headline,
    ),
    (
        "fig5m",
        "Figure 5 measured on the implemented framework (TinyNet)",
        measured::fig5m,
    ),
    (
        "fig6m",
        "Figure 6 measured on a really-trained, really-pruned TinyNet",
        measured::fig6m,
    ),
    (
        "fig8m",
        "Figure 8 measured: multi-layer pruning on a 3-conv SequentialNet",
        measured::fig8m,
    ),
    (
        "scalingm",
        "Strong scaling of the parallel inference engine + Amdahl fit",
        scaling_exp::scalingm,
    ),
    (
        "sentinel",
        "Perf-regression sentinel workload (compare with --baseline, emit with --write-baseline)",
        sentinel::sentinel,
    ),
    (
        "kernels",
        "Ablation: scalar vs runtime-dispatched SIMD microkernels (GEMM, SpMM, end-to-end)",
        kernels_exp::kernels_ablation,
    ),
    (
        "fusion",
        "Ablation: graph-level conv/fc→relu fusion (CAP_TENSOR_FUSION) off vs on",
        fusion_exp::fusion_ablation,
    ),
    (
        "dagpar",
        "Ablation: intra-network DAG-parallel scheduler (CAP_CNN_DAG) off vs on + critical path",
        dagpar_exp::dagpar_ablation,
    ),
    (
        "serve",
        "Online serving: multi-tenant dynamic batching under open-loop load (throughput vs p50/p99 + cost/1k)",
        serve_exp::serve,
    ),
    (
        "quantize",
        "Ablation: int8 quantized kernels vs f32 (CAP_TENSOR_PRECISION) + joint prune x quantize frontier",
        quantize_exp::quantize_ablation,
    ),
    (
        "ablation-alloc",
        "Ablation: Algorithm 1 greedy ordering heuristics",
        ablation::ablation_alloc,
    ),
    (
        "ablation-knobs",
        "Ablation: pruning vs quantization vs weight sharing",
        ablation::ablation_knobs,
    ),
    (
        "fig9g",
        "Extension: Googlenet configuration space on the g3 family",
        extensions::fig9g,
    ),
    (
        "whatif",
        "Extension: what-if consumer queries over the space",
        extensions::whatif,
    ),
];

/// Run one experiment by id; `None` when the id is unknown.
pub fn run_experiment(id: &str) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_paper_experiments() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _, _)| *id).collect();
        for expected in [
            "table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "fig12", "alg1", "headline",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("fig99").is_none());
    }

    #[test]
    fn quick_experiments_produce_output() {
        for id in ["table1", "table3", "fig4", "fig5", "fig8", "fig11", "fig12"] {
            let out = run_experiment(id).unwrap();
            assert!(out.len() > 100, "{id} output too short");
        }
    }
}
