//! # cap-bench
//!
//! The reproduction harness: one experiment module per table and figure
//! of the paper's evaluation section, each emitting the same rows/series
//! the paper reports, plus the Criterion benchmark suite (see
//! `benches/`). Run experiments with
//!
//! ```sh
//! cargo run --release -p cap-bench --bin repro -- --exp fig8
//! cargo run --release -p cap-bench --bin repro -- --exp all
//! ```

pub mod experiments;

pub use experiments::{run_experiment, EXPERIMENTS};
