//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p cap-bench --bin repro -- --list
//! cargo run --release -p cap-bench --bin repro -- --exp fig8
//! cargo run --release -p cap-bench --bin repro -- --exp all
//! cargo run --release -p cap-bench --bin repro -- --exp all --out results/
//! # Chrome trace_event timeline of the profile experiment (load in
//! # Perfetto / chrome://tracing):
//! cargo run --release -p cap-bench --bin repro -- --exp profile --trace-out trace.json
//! # Virtual-clock serving timeline: one track per tenant plus router
//! # worker tracks, bit-identical run to run:
//! cargo run --release -p cap-bench --bin repro -- --exp serve --trace-out serve.json
//! # Perf-regression sentinel against the checked-in baseline (exits
//! # nonzero on a strict violation):
//! cargo run --release -p cap-bench --bin repro -- --exp sentinel --baseline BENCH_baseline.json
//! cargo run --release -p cap-bench --bin repro -- --exp sentinel --write-baseline BENCH_baseline.json
//! ```

use cap_bench::experiments::{profile, sentinel, serve_exp};
use cap_bench::{run_experiment, EXPERIMENTS};
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: repro --exp <id>|all [--out DIR] [--trace-out FILE] \
         [--baseline FILE] [--write-baseline FILE] | --list"
    );
    eprintln!("experiments:");
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<15} {desc}");
    }
    std::process::exit(2);
}

fn emit(id: &str, report: &str, out_dir: Option<&str>) {
    match out_dir {
        Some(dir) => {
            let path = Path::new(dir).join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, report) {
                eprintln!("failed writing {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        None => println!("{report}"),
    }
}

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed writing {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// The sentinel path owns the process exit code: 0 clean, 1 on a
/// strict baseline violation, 2 when the baseline cannot be read.
fn run_sentinel(baseline: Option<&str>, write_baseline: Option<&str>, out_dir: Option<&str>) -> ! {
    let run = sentinel::run_workload();
    emit("sentinel", &run.report, out_dir);
    if let Some(path) = write_baseline {
        write_file(path, &run.baseline_json());
    }
    let Some(path) = baseline else {
        std::process::exit(0);
    };
    let contents = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed reading baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    match run.compare(&contents) {
        Ok(cmp) => {
            println!("\n# Baseline comparison ({path})\n\n{}", cmp.report);
            if cmp.strict_violations > 0 {
                eprintln!(
                    "sentinel: {} strict violation(s) against {path}",
                    cmp.strict_violations
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("sentinel: unusable baseline {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    // Whatever goes wrong, the global flight recorder's last spans are
    // worth more than the panic message alone: dump the timeline tail
    // to stderr before unwinding kills it.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default_hook(info);
        let dump = cap_obs::flight::global().dump_text();
        if dump.is_empty() {
            eprintln!("flight recorder: no spans recorded");
        } else {
            eprintln!("flight recorder (most recent spans last):\n{dump}");
        }
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--exp" => {
                exp = args.get(i + 1).cloned();
                i += 1;
            }
            "--out" => {
                out_dir = args.get(i + 1).cloned();
                i += 1;
            }
            "--trace-out" => {
                trace_out = args.get(i + 1).cloned();
                i += 1;
            }
            "--baseline" => {
                baseline = args.get(i + 1).cloned();
                i += 1;
            }
            "--write-baseline" => {
                write_baseline = args.get(i + 1).cloned();
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    if list {
        for (id, desc, _) in EXPERIMENTS {
            println!("{id:<15} {desc}");
        }
        return;
    }
    let Some(exp) = exp else { usage() };
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed creating {dir}: {e}");
            std::process::exit(1);
        }
    }
    // --trace-out works for any experiment with a span source: profile
    // (wall-clock forward-pass spans) and serve (virtual-clock request
    // lifecycle spans).
    if trace_out.is_some() && !matches!(exp.as_str(), "profile" | "serve") {
        eprintln!("--trace-out requires an experiment with a span source (profile, serve)");
        usage();
    }
    if (baseline.is_some() || write_baseline.is_some()) && exp != "sentinel" {
        eprintln!("--baseline/--write-baseline only apply to --exp sentinel");
        usage();
    }

    if exp == "sentinel" {
        run_sentinel(
            baseline.as_deref(),
            write_baseline.as_deref(),
            out_dir.as_deref(),
        );
    }
    if exp == "profile" {
        let (report, spans) = profile::profile_caffenet_with_trace();
        emit("profile", &report, out_dir.as_deref());
        if let Some(path) = trace_out {
            write_file(&path, &cap_obs::chrome_trace_json(&spans));
        }
        return;
    }
    if exp == "serve" && trace_out.is_some() {
        let (report, spans) = serve_exp::serve_with_trace();
        emit("serve", &report, out_dir.as_deref());
        if let Some(path) = trace_out {
            write_file(&path, &cap_obs::chrome_trace_json(&spans));
        }
        return;
    }
    if exp == "all" {
        for (id, _, _) in EXPERIMENTS {
            if out_dir.is_none() {
                println!("{}", "=".repeat(72));
            }
            match run_experiment(id) {
                Some(report) => emit(id, &report, out_dir.as_deref()),
                None => eprintln!("experiment {id} failed to run"),
            }
        }
    } else {
        match run_experiment(&exp) {
            Some(report) => emit(&exp, &report, out_dir.as_deref()),
            None => {
                eprintln!("unknown experiment: {exp}");
                usage();
            }
        }
    }
}
