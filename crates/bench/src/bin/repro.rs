//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p cap-bench --bin repro -- --list
//! cargo run --release -p cap-bench --bin repro -- --exp fig8
//! cargo run --release -p cap-bench --bin repro -- --exp all
//! cargo run --release -p cap-bench --bin repro -- --exp all --out results/
//! ```

use cap_bench::{run_experiment, EXPERIMENTS};
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: repro --exp <id>|all [--out DIR] | --list");
    eprintln!("experiments:");
    for (id, desc, _) in EXPERIMENTS {
        eprintln!("  {id:<15} {desc}");
    }
    std::process::exit(2);
}

fn emit(id: &str, report: &str, out_dir: Option<&str>) {
    match out_dir {
        Some(dir) => {
            let path = Path::new(dir).join(format!("{id}.txt"));
            if let Err(e) = std::fs::write(&path, report) {
                eprintln!("failed writing {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
        None => println!("{report}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut list = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--exp" => {
                exp = args.get(i + 1).cloned();
                i += 1;
            }
            "--out" => {
                out_dir = args.get(i + 1).cloned();
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }
    if list {
        for (id, desc, _) in EXPERIMENTS {
            println!("{id:<15} {desc}");
        }
        return;
    }
    let Some(exp) = exp else { usage() };
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed creating {dir}: {e}");
            std::process::exit(1);
        }
    }
    if exp == "all" {
        for (id, _, _) in EXPERIMENTS {
            if out_dir.is_none() {
                println!("{}", "=".repeat(72));
            }
            match run_experiment(id) {
                Some(report) => emit(id, &report, out_dir.as_deref()),
                None => eprintln!("experiment {id} failed to run"),
            }
        }
    } else {
        match run_experiment(&exp) {
            Some(report) => emit(&exp, &report, out_dir.as_deref()),
            None => {
                eprintln!("unknown experiment: {exp}");
                usage();
            }
        }
    }
}
