//! Figures 3–5: application characterization.

use cap_cloud::GpuKind;
use cap_core::characterize::{
    layer_time_distribution_min_of, layer_time_distribution_model, parallel_saturation_curve,
    single_inference_sweep,
};
use cap_pruning::{caffenet_profile, googlenet_profile};
use std::fmt::Write;

fn bar(frac: f64, width: usize) -> String {
    "#".repeat((frac * width as f64).round() as usize)
}

/// Figure 3: Caffenet per-layer execution time distribution — both the
/// calibrated single-inference shares (the paper's measurement) and a
/// real timed forward pass of the implemented Caffenet.
pub fn fig3() -> String {
    let mut out = String::new();
    writeln!(out, "# Figure 3: Caffenet execution time distribution").unwrap();
    writeln!(
        out,
        "\n[model] calibrated single-inference shares (paper: 51/16/9/10/7 % convs):"
    )
    .unwrap();
    for l in layer_time_distribution_model(&caffenet_profile()) {
        writeln!(
            out,
            "  {:<10} {:>5.1}%  {}",
            l.name,
            l.share * 100.0,
            bar(l.share, 60)
        )
        .unwrap();
    }

    writeln!(
        out,
        "\n[measured] one timed forward pass of the implemented Caffenet (CPU):"
    )
    .unwrap();
    let net = cap_cnn::models::caffenet(cap_cnn::models::WeightInit::Gaussian {
        std: 0.01,
        seed: 42,
    })
    .expect("caffenet builds");
    let input = cap_tensor::Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
        ((c * 13 + h * 3 + w) % 23) as f32 / 23.0 - 0.5
    });
    // Warm-up pass: fault in the ~240 MB of weights so the timed passes
    // measure compute, not first-touch page faults. Then apply the
    // paper's §3.3 protocol: three runs, per-layer minimum.
    let _ = net.forward(&input).expect("warm-up forward runs");
    let shares = layer_time_distribution_min_of(&net, &input, 3).expect("forward runs");
    // Aggregate by kind for readability, then list convs individually.
    let conv_total: f64 = shares
        .iter()
        .filter(|l| l.kind == "conv")
        .map(|l| l.share)
        .sum();
    for l in shares.iter().filter(|l| l.kind == "conv") {
        writeln!(
            out,
            "  {:<10} {:>5.1}%  {}",
            l.name,
            l.share * 100.0,
            bar(l.share, 60)
        )
        .unwrap();
    }
    let rest = 1.0 - conv_total;
    writeln!(
        out,
        "  {:<10} {:>5.1}%  {}",
        "non-conv",
        rest * 100.0,
        bar(rest, 60)
    )
    .unwrap();
    writeln!(
        out,
        "\nshape check: convolution layers dominate ({:.0}% measured; paper >90%)",
        conv_total * 100.0
    )
    .unwrap();
    out
}

/// Figure 4: single-inference latency vs uniform prune ratio, Caffenet
/// and Googlenet.
pub fn fig4() -> String {
    let ratios: Vec<f64> = (0..=9).map(|i| i as f64 / 10.0).collect();
    let mut out = String::new();
    writeln!(
        out,
        "# Figure 4: time for a single inference vs prune ratio"
    )
    .unwrap();
    writeln!(
        out,
        "{:>7} {:>12} {:>12}",
        "ratio", "caffenet s", "googlenet s"
    )
    .unwrap();
    let caffe = single_inference_sweep(&caffenet_profile(), &ratios);
    let goog = single_inference_sweep(&googlenet_profile(), &ratios);
    for ((r, tc), (_, tg)) in caffe.iter().zip(goog.iter()) {
        writeln!(out, "{:>6.0}% {:>12.4} {:>12.4}", r * 100.0, tc, tg).unwrap();
    }
    writeln!(
        out,
        "\npaper anchors: caffenet 0.090 -> ~0.050 s, googlenet 0.160 -> ~0.100 s at 90%"
    )
    .unwrap();
    out
}

/// Figure 5: time for the 50 000-image workload vs parallel inferences
/// on one K80 GPU.
pub fn fig5() -> String {
    let batches: Vec<u32> = vec![1, 25, 50, 100, 150, 200, 300, 400, 600, 1000, 1500, 2000];
    let mut out = String::new();
    writeln!(
        out,
        "# Figure 5: parallel inference on a GPU (K80, 50 000 images)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>9} {:>14} {:>14}",
        "parallel", "caffenet s", "googlenet s"
    )
    .unwrap();
    let caffe = parallel_saturation_curve(&caffenet_profile(), GpuKind::K80, 50_000, &batches);
    let goog = parallel_saturation_curve(&googlenet_profile(), GpuKind::K80, 50_000, &batches);
    for ((b, tc), (_, tg)) in caffe.iter().zip(goog.iter()) {
        writeln!(out, "{:>9} {:>14.0} {:>14.0}", b, tc, tg).unwrap();
    }
    // Saturation check.
    let t300 = caffe.iter().find(|(b, _)| *b == 300).unwrap().1;
    let t2000 = caffe.iter().find(|(b, _)| *b == 2000).unwrap().1;
    writeln!(
        out,
        "\nsaturation: 300 vs 2000 parallel differ by {:.1}% (paper: saturated at ~300)",
        (t300 - t2000) / t300 * 100.0
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_series_monotone_and_anchored() {
        let t = fig4();
        assert!(t.contains("0.0900"));
        assert!(t.contains("0.1600"));
    }

    #[test]
    fn fig5_has_saturation_line() {
        let t = fig5();
        assert!(t.contains("saturation:"));
    }
}
