//! Microkernel ablation: scalar vs runtime-dispatched SIMD paths on the
//! three kernel families `cap_tensor::kernels` serves — packed dense
//! GEMM, CSR sparse×dense SpMM, and the end-to-end network forward that
//! composes them with the elementwise kernels (ReLU, bias, max-pool).
//!
//! Every arm runs the *same* code path through the public API; only the
//! forced [`KernelPath`] differs. Because the default SIMD path is
//! bit-identical to scalar (see `crates/tensor/tests/kernel_parity.rs`),
//! the measured deltas are pure execution-speed effects, never
//! accuracy trades. On a non-AVX2 host only the scalar arm is
//! available and the table says so instead of skipping silently.

use super::scaling_exp::{mini_caffenet, workload};
use cap_cnn::run_batched;
use cap_tensor::kernels::{self, KernelPath};
use cap_tensor::{gemm_prepacked, CsrMatrix, Matrix, PackedB, Tensor4};
use std::fmt::Write;
use std::time::Instant;

/// GEMM shapes measured, `(label, m, k, n)`. The first two are
/// Caffenet's conv2/conv3 im2col shapes from Table 1 (output channels ×
/// in·kh·kw × output pixels); the third is a batch-1 FC slice that
/// stresses the single-row tail of the panel kernel.
const GEMM_SHAPES: &[(&str, usize, usize, usize)] = &[
    ("conv2-like 256x1200x729", 256, 1200, 729),
    ("conv3-like 384x2304x169", 384, 2304, 169),
    ("fc batch-1 1x4096x1000", 1, 4096, 1000),
];

/// SpMM sparsity arms: the paper's pruning sweep end-points.
const SPARSITIES: &[f64] = &[0.0, 0.6, 0.9];

fn deterministic_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + salt) % 29) as f32 - 14.0) / 15.0
    })
}

/// Time `f` adaptively: repeat until the total exceeds ~40 ms, report
/// the best single-iteration time (least-noise estimator on a shared
/// host). Shared with the `fusion` ablation.
pub(crate) fn best_secs<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut iters = 0usize;
    while spent < 0.04 || iters < 3 {
        let t = Instant::now();
        f();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        iters += 1;
    }
    best
}

/// Best SIMD arm over the scalar arm (`rates[0]`); 1.0 when only the
/// scalar path exists.
fn best_speedup(rates: &[f64]) -> f64 {
    let best = rates[1..].iter().copied().fold(rates[0], f64::max);
    best / rates[0].max(1e-12)
}

fn on_path<T>(path: KernelPath, f: impl FnOnce() -> T) -> T {
    kernels::force(Some(path));
    let out = f();
    kernels::force(None);
    out
}

/// The `kernels` registry entry: ablation table for the dispatch layer.
pub fn kernels_ablation() -> String {
    let paths = kernels::available_paths();
    let mut out = String::new();
    writeln!(out, "# Microkernel ablation: scalar vs SIMD dispatch").unwrap();
    writeln!(
        out,
        "\navailable paths: {} (selected by default: {})",
        paths
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", "),
        kernels::selected().name()
    )
    .unwrap();
    if paths.len() == 1 {
        writeln!(
            out,
            "note: host has no AVX2 — every arm below runs the scalar kernel"
        )
        .unwrap();
    }

    // --- Packed dense GEMM -------------------------------------------------
    writeln!(out, "\n## Packed GEMM (GFLOP/s, best of repeated runs)").unwrap();
    write!(out, "{:<26}", "shape").unwrap();
    for p in &paths {
        write!(out, " {:>10}", p.name()).unwrap();
    }
    writeln!(out, " {:>9}", "speedup").unwrap();
    for &(label, m, k, n) in GEMM_SHAPES {
        let a = deterministic_matrix(m, k, 1);
        let b = PackedB::pack(&deterministic_matrix(k, n, 2));
        let mut c = Matrix::zeros(m, n);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let mut rates = Vec::new();
        for &p in &paths {
            let secs = on_path(p, || best_secs(|| gemm_prepacked(&a, &b, &mut c).unwrap()));
            rates.push(flops / secs / 1e9);
        }
        write!(out, "{label:<26}").unwrap();
        for r in &rates {
            write!(out, " {r:>10.2}").unwrap();
        }
        writeln!(out, " {:>8.2}x", best_speedup(&rates)).unwrap();
    }

    // --- Sparse CSR x dense ------------------------------------------------
    writeln!(
        out,
        "\n## CSR SpMM 256x1200 x 1200x729 (effective dense GFLOP/s)"
    )
    .unwrap();
    write!(out, "{:<26}", "sparsity").unwrap();
    for p in &paths {
        write!(out, " {:>10}", p.name()).unwrap();
    }
    writeln!(out, " {:>9}", "speedup").unwrap();
    let (m, k, n) = (256usize, 1200usize, 729usize);
    let b = deterministic_matrix(k, n, 3);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    for &sp in SPARSITIES {
        // Prune by striding: keep every floor(1/(1-sp))-th weight.
        let keep_every = if sp == 0.0 {
            1
        } else {
            (1.0 / (1.0 - sp)).round() as usize
        };
        let dense = Matrix::from_fn(m, k, |r, c| {
            if (r * k + c) % keep_every == 0 {
                (((r * 13 + c * 7) % 23) as f32 - 11.0) / 12.0
            } else {
                0.0
            }
        });
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let mut c = Matrix::zeros(m, n);
        let mut rates = Vec::new();
        for &p in &paths {
            let secs = on_path(p, || {
                best_secs(|| csr.matmul_dense_into(&b, &mut c).unwrap())
            });
            rates.push(flops / secs / 1e9);
        }
        write!(out, "{:<26}", format!("{:.0}% pruned", sp * 100.0)).unwrap();
        for r in &rates {
            write!(out, " {r:>10.2}").unwrap();
        }
        writeln!(out, " {:>8.2}x", best_speedup(&rates)).unwrap();
    }

    // --- End-to-end network forward ----------------------------------------
    writeln!(
        out,
        "\n## End-to-end mini-Caffenet forward (images/s, 32-image workload)"
    )
    .unwrap();
    write!(out, "{:<26}", "batch").unwrap();
    for p in &paths {
        write!(out, " {:>10}", p.name()).unwrap();
    }
    writeln!(out, " {:>9}", "speedup").unwrap();
    let net = mini_caffenet();
    let imgs = workload();
    let one = Tensor4::from_fn(1, 3, 64, 64, |_, c, h, w| {
        ((c * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
    });
    for (label, imgs, batch) in [("batch 1", &one, 1usize), ("batch 8", &imgs, 8usize)] {
        let mut rates = Vec::new();
        for &p in &paths {
            // Warm once on this path (packs weights, grows arenas), then time.
            let secs = on_path(p, || {
                run_batched(&net, imgs, batch).unwrap();
                best_secs(|| {
                    run_batched(&net, imgs, batch).unwrap();
                })
            });
            rates.push(imgs.n() as f64 / secs);
        }
        write!(out, "{label:<26}").unwrap();
        for r in &rates {
            write!(out, " {r:>10.1}").unwrap();
        }
        writeln!(out, " {:>8.2}x", best_speedup(&rates)).unwrap();
    }

    writeln!(
        out,
        "\nparity contract: every non-fma arm above is bit-identical to scalar \
         (crates/tensor/tests/kernel_parity.rs, crates/cnn/tests/kernel_parity_net.rs); \
         speedups are execution-only, never accuracy trades."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_all_available_paths() {
        let out = kernels_ablation();
        for p in kernels::available_paths() {
            assert!(out.contains(p.name()), "missing {} in:\n{out}", p.name());
        }
        assert!(out.contains("Packed GEMM"), "{out}");
        assert!(out.contains("CSR SpMM"), "{out}");
        assert!(out.contains("mini-Caffenet forward"), "{out}");
        // Force must have been restored for later tests in this process.
        assert!(kernels::selected().is_available());
    }
}
