//! Tables 1 and 3, regenerated from the implemented model and catalog.

use cap_cnn::models::{caffenet, WeightInit};
use cap_cnn::LayerKind;
use std::fmt::Write;

/// Table 1: Caffenet layers — sizes, filter counts, filter shapes, read
/// off the actual constructed network.
pub fn table1() -> String {
    let net = caffenet(WeightInit::Zeros).expect("caffenet builds");
    let mut out = String::new();
    writeln!(
        out,
        "# Table 1: Caffenet Layers (from the constructed model)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>16} {:>10} {:>12}",
        "layer", "size", "#filters", "filter size"
    )
    .unwrap();
    let (ic, ih, iw) = net.input_shape();
    writeln!(
        out,
        "{:<8} {:>16} {:>10} {:>12}",
        "input",
        format!("{iw}x{ih}x{ic}"),
        "-",
        "-"
    )
    .unwrap();
    for name in net.layers_of_kind(LayerKind::Convolution) {
        let id = net.node_id(&name).unwrap();
        let (c, h, w) = net.shape_of(id).unwrap();
        let layer = net.layer(&name).unwrap();
        let weights = layer.weights().unwrap();
        // filter size = kh x kw x in_per_group; derive from weight cols.
        let filters = weights.rows();
        writeln!(
            out,
            "{:<8} {:>16} {:>10} {:>12}",
            name,
            format!("{w}x{h}x{c}"),
            filters,
            describe_filter(&name, weights.cols())
        )
        .unwrap();
    }
    for name in net.layers_of_kind(LayerKind::InnerProduct) {
        let id = net.node_id(&name).unwrap();
        let (c, _, _) = net.shape_of(id).unwrap();
        writeln!(out, "{:<8} {:>16} {:>10} {:>12}", name, c, "-", "-").unwrap();
    }
    writeln!(out, "\ntotal parameters: {}", net.param_count()).unwrap();
    writeln!(
        out,
        "paper row check: conv1 55x55x96 / 96 / 11x11x3; conv2 27x27x256 / 256 / 5x5x48"
    )
    .unwrap();
    out
}

fn describe_filter(name: &str, weight_cols: usize) -> String {
    // weight_cols = in_per_group * kh * kw; recover the paper's kxkxc form.
    let k = match name {
        "conv1" => 11,
        "conv2" => 5,
        _ => 3,
    };
    format!("{k}x{k}x{}", weight_cols / (k * k))
}

/// Table 3: the EC2 catalog.
pub fn table3() -> String {
    let mut out = String::new();
    writeln!(out, "# Table 3: Amazon EC2 Cloud Resource Types").unwrap();
    writeln!(
        out,
        "{:<14} {:>6} {:>5} {:>8} {:>8} {:>8}  {:<10}",
        "instance", "vCPUs", "GPUs", "mem GB", "GPUmem", "$/hr", "GPU type"
    )
    .unwrap();
    for inst in cap_cloud::catalog() {
        writeln!(
            out,
            "{:<14} {:>6} {:>5} {:>8} {:>8} {:>8.2}  {:<10}",
            inst.name,
            inst.vcpus,
            inst.gpus,
            inst.mem_gb,
            inst.gpu_mem_gb,
            inst.price_per_hour,
            inst.gpu.name()
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_eight_rows() {
        let t = table1();
        for row in [
            "conv1", "conv2", "conv3", "conv4", "conv5", "fc6", "fc7", "fc8",
        ] {
            assert!(t.contains(row), "missing {row}");
        }
        assert!(t.contains("55x55x96"));
        assert!(t.contains("5x5x48"));
        assert!(t.contains("3x3x192"));
    }

    #[test]
    fn table3_contains_all_six_instances() {
        let t = table3();
        for name in [
            "p2.xlarge",
            "p2.8xlarge",
            "p2.16xlarge",
            "g3.4xlarge",
            "g3.8xlarge",
            "g3.16xlarge",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("NVIDIA K80") && t.contains("NVIDIA M60"));
    }
}
