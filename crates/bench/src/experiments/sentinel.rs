//! The CI perf-regression sentinel: run a fixed mini-Caffenet workload,
//! snapshot the metrics registry (structural counters + latency
//! quantiles), and compare against a checked-in baseline
//! (`BENCH_baseline.json` at the repository root).
//!
//! Two classes of metric, compared differently:
//!
//! * **strict** — deterministic structural counters (forward passes,
//!   batch observations, workspace checkouts, arena high-water). These
//!   must match the baseline exactly; any drift means the pipeline's
//!   *shape* changed (an extra pass, a lost pool hit, a grown arena)
//!   and the sentinel exits nonzero — a hard CI gate.
//! * **advisory** — wall-clock latency quantiles and rates. Shared CI
//!   runners make timing noisy, so these compare within a per-metric
//!   relative tolerance and violations are *report-only*: they flag a
//!   suspect; they never fail the build.
//!
//! The baseline file carries the kind and tolerance per metric, so the
//! comparison policy is versioned alongside the numbers it governs.
//! Regenerate with `repro --exp sentinel --write-baseline
//! BENCH_baseline.json` after an intentional pipeline change.
//!
//! The workload runs under a [`TimingGuard`] with the registry reset
//! **before** warm-up, so high-water gauges like `arena_bytes` cover
//! exactly this run (see [`cap_obs::Gauge::record_max`] on why the
//! order matters), and it reports into the global
//! [`FlightRecorder`](cap_obs::FlightRecorder) so a crash mid-sentinel
//! leaves a timeline behind.

use super::scaling_exp::{mini_caffenet, workload};
use cap_cnn::{run_batched, ParallelEngine};
use cap_obs::TimingGuard;
use serde::Value;
use std::fmt::Write;

/// Baseline file format identifier.
pub const SCHEMA: &str = "cap-sentinel-v1";

/// Sequential warm-up runs (arena growth, weight packing, page faults).
const WARM_RUNS: usize = 1;
/// Timed sequential runs feeding the latency histograms.
const TIMED_RUNS: usize = 3;
/// Parallel-engine runs (2 workers) exercising the concurrent paths.
const ENGINE_RUNS: usize = 2;
/// Engine worker count — fixed, so structural counts never depend on
/// the host's core count.
const ENGINE_WORKERS: usize = 2;
/// Images per chunk.
const BATCH: usize = 8;

/// How a metric is held against its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Deterministic structural counter: must match exactly; a
    /// mismatch fails CI.
    Strict,
    /// Timing-derived: compared within `rel_tol`, report-only.
    Advisory,
}

impl MetricKind {
    fn tag(self) -> &'static str {
        match self {
            MetricKind::Strict => "strict",
            MetricKind::Advisory => "advisory",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "strict" => Some(MetricKind::Strict),
            "advisory" => Some(MetricKind::Advisory),
            _ => None,
        }
    }
}

/// One measured metric with its comparison policy.
#[derive(Debug, Clone)]
pub struct SentinelMetric {
    /// Stable metric name (baseline JSON key).
    pub name: &'static str,
    /// Measured value for this run.
    pub value: f64,
    /// Comparison class.
    pub kind: MetricKind,
    /// Relative tolerance (0.0 for strict metrics).
    pub rel_tol: f64,
}

/// The outcome of one sentinel workload run.
#[derive(Debug)]
pub struct SentinelRun {
    /// Every metric captured, in report order.
    pub metrics: Vec<SentinelMetric>,
    /// Human-readable run report (workload + metric table).
    pub report: String,
}

/// Result of holding a run against a baseline.
#[derive(Debug)]
pub struct Comparison {
    /// Human-readable comparison table with verdicts.
    pub report: String,
    /// Strict-metric mismatches (any > 0 must fail CI).
    pub strict_violations: usize,
    /// Advisory metrics outside tolerance (report-only).
    pub advisory_violations: usize,
}

/// Execute the fixed workload and capture the sentinel metrics.
///
/// Deterministic by construction: fixed model seed, fixed image set,
/// fixed batch/run/worker counts, and a registry reset before warm-up —
/// so every strict metric is a pure function of the pipeline's code.
pub fn run_workload() -> SentinelRun {
    let _timing = TimingGuard::enable();

    // Serve advisory segment FIRST, between two registry resets, so the
    // strict counters below cover exactly the offline workload and stay
    // byte-identical to the pre-serving baseline. The serve quantiles
    // are virtual-clock values — deterministic, but kept advisory so
    // serving-policy tuning shows up as drift in CI without gating it.
    cap_obs::metrics().reset();
    let serve = serve_segment();

    // Int8 fidelity probe, also between resets: the same workload under
    // both precisions, reduced to agreement/delta advisories. Kernel
    // parity makes the int8 logits host-independent, but the f32
    // reference differs slightly across dispatch paths (FMA), so these
    // stay advisory rather than strict.
    cap_obs::metrics().reset();
    let int8 = int8_segment();

    // Reset BEFORE warm-up: `arena_bytes` is a high-water mark that is
    // re-reported every pass, and workspace hit/miss counters start
    // counting here — the captured numbers cover exactly this run.
    cap_obs::metrics().reset();

    let net = mini_caffenet();
    let imgs = workload();
    let flight = cap_obs::flight::global();

    for _ in 0..WARM_RUNS + TIMED_RUNS {
        run_batched(&net, &imgs, BATCH).expect("sequential sentinel run");
    }
    let engine = ParallelEngine::new(ENGINE_WORKERS);
    for _ in 0..ENGINE_RUNS {
        engine
            .run_batched_traced(&net, &imgs, BATCH, flight)
            .expect("parallel sentinel run");
    }

    let snap = cap_obs::metrics().snapshot();
    let lat = &snap.forward_latency_us;
    let (p50, p90, p95, p99) = lat.percentiles().expect("timed runs recorded latency");
    let checkouts = snap.workspace_hits + snap.workspace_misses;
    let hit_rate = if checkouts == 0 {
        0.0
    } else {
        snap.workspace_hits as f64 / checkouts as f64
    };

    let metrics = vec![
        // Structural: the pipeline's shape. Exact or bust.
        m(
            "forward_passes",
            snap.forward_passes as f64,
            MetricKind::Strict,
            0.0,
        ),
        m(
            "batch_observations",
            snap.batch_sizes.count as f64,
            MetricKind::Strict,
            0.0,
        ),
        m(
            "batch_p50",
            snap.batch_sizes.quantile(0.5).unwrap_or(0) as f64,
            MetricKind::Strict,
            0.0,
        ),
        m(
            "workspace_checkouts",
            checkouts as f64,
            MetricKind::Strict,
            0.0,
        ),
        m(
            "arena_bytes",
            snap.arena_bytes as f64,
            MetricKind::Strict,
            0.0,
        ),
        // Timing-derived: noisy on shared runners, advisory only.
        m("workspace_hit_rate", hit_rate, MetricKind::Advisory, 0.05),
        m(
            "forward_latency_p50_us",
            p50 as f64,
            MetricKind::Advisory,
            0.50,
        ),
        m(
            "forward_latency_p90_us",
            p90 as f64,
            MetricKind::Advisory,
            0.50,
        ),
        m(
            "forward_latency_p95_us",
            p95 as f64,
            MetricKind::Advisory,
            0.50,
        ),
        m(
            "forward_latency_p99_us",
            p99 as f64,
            MetricKind::Advisory,
            0.75,
        ),
        m(
            "forward_latency_mean_us",
            lat.mean(),
            MetricKind::Advisory,
            0.50,
        ),
        m(
            "layer_time_p99_us",
            snap.layer_time_us.quantile(0.99).unwrap_or(0) as f64,
            MetricKind::Advisory,
            0.75,
        ),
        // Serving quantiles from the fixed serve segment. Virtual-clock
        // values (reproducible to the microsecond), held advisory with
        // a tight tolerance: drift flags a serving-policy change
        // without hard-gating it.
        m(
            "serve_latency_p50_us",
            serve.lat_p50 as f64,
            MetricKind::Advisory,
            0.10,
        ),
        m(
            "serve_latency_p99_us",
            serve.lat_p99 as f64,
            MetricKind::Advisory,
            0.10,
        ),
        m(
            "serve_batch_occupancy_mean",
            serve.occupancy_mean,
            MetricKind::Advisory,
            0.10,
        ),
        m(
            "serve_completed",
            serve.completed as f64,
            MetricKind::Advisory,
            0.10,
        ),
        // Int8 fidelity advisories from the precision probe: drift here
        // means the quantized path's numerics moved relative to f32.
        m(
            "int8_top1_agreement",
            int8.top1_agreement,
            MetricKind::Advisory,
            0.10,
        ),
        m(
            "int8_logit_rel_delta",
            int8.logit_rel_delta,
            MetricKind::Advisory,
            0.75,
        ),
    ];

    let mut report = String::new();
    writeln!(report, "# Perf-regression sentinel").unwrap();
    writeln!(
        report,
        "\nworkload: mini-Caffenet 32 images batch {BATCH}; {} sequential runs \
         ({WARM_RUNS} warm + {TIMED_RUNS} timed), {ENGINE_RUNS} runs on a \
         {ENGINE_WORKERS}-worker ParallelEngine; plus isolated serve \
         (1 tenant, 0.1 virtual s) and int8-fidelity segments for the \
         serve_* / int8_* advisories",
        WARM_RUNS + TIMED_RUNS
    )
    .unwrap();
    // Report-only context, never a strict metric: the selected kernel
    // backend is host-dependent (AVX2 vs scalar), so baselining it
    // would make BENCH_baseline.json unportable across runners. The
    // strict counters above are allocation/shape metrics and identical
    // on every backend — see crates/tensor/tests/kernel_parity.rs.
    writeln!(
        report,
        "kernel backend: {}\n",
        cap_obs::kernel_path_name(snap.kernel_path)
    )
    .unwrap();
    writeln!(
        report,
        "{:<26} {:>16} {:>9} {:>8}",
        "metric", "value", "kind", "rel_tol"
    )
    .unwrap();
    for sm in &metrics {
        writeln!(
            report,
            "{:<26} {:>16.3} {:>9} {:>8.2}",
            sm.name,
            sm.value,
            sm.kind.tag(),
            sm.rel_tol
        )
        .unwrap();
    }
    writeln!(
        report,
        "\nmetrics snapshot (full registry):\n{}",
        snap.to_text()
    )
    .unwrap();

    SentinelRun { metrics, report }
}

/// Serving quantiles captured by [`serve_segment`].
struct ServeSegment {
    lat_p50: u64,
    lat_p99: u64,
    occupancy_mean: f64,
    completed: u64,
}

/// A fixed, tiny serve run feeding the `serve_*` advisory metrics: one
/// demo tenant, seeded Poisson arrivals, 0.1 virtual seconds. All
/// captured values come off the router's virtual clock, so this
/// segment is exactly reproducible; it runs between registry resets so
/// the offline strict counters never see it.
fn serve_segment() -> ServeSegment {
    use cap_serve::{fleet, generate_trace, ArrivalPattern, Router, RouterConfig};

    let mut router = Router::new(
        RouterConfig {
            workers: 2,
            ..RouterConfig::default()
        },
        vec![fleet::pruned_tenant("sentinel", 1, 0.0)],
    );
    let trace = generate_trace(4242, &[ArrivalPattern::Poisson { rate_per_s: 600.0 }], 0.1);
    let report = router
        .serve_trace(&trace, &[fleet::demo_images(4)])
        .expect("sentinel serve segment");
    let snap = cap_obs::metrics().snapshot();
    ServeSegment {
        lat_p50: snap.serve_latency_us.quantile(0.50).unwrap_or(0),
        lat_p99: snap.serve_latency_us.quantile(0.99).unwrap_or(0),
        occupancy_mean: snap.serve_batch_occupancy.mean(),
        completed: report.completed,
    }
}

/// Int8 fidelity advisories captured by [`int8_segment`].
struct Int8Segment {
    /// Fraction of workload images whose argmax class agrees between
    /// the f32 and int8 runs.
    top1_agreement: f64,
    /// Max absolute logit delta, relative to the largest f32 logit
    /// magnitude.
    logit_rel_delta: f64,
}

/// Run the sentinel workload once under each precision
/// (`cap_tensor::precision::force`) and reduce the two logit sets to
/// agreement/delta advisories. Uncalibrated, so activation scales come
/// from the per-batch max-abs fallback — deterministic for the fixed
/// image set.
fn int8_segment() -> Int8Segment {
    use cap_tensor::{precision, Precision};

    let net = mini_caffenet();
    let imgs = workload();
    precision::force(Some(Precision::F32));
    let (ref_out, _) = run_batched(&net, &imgs, BATCH).expect("f32 fidelity probe");
    precision::force(Some(Precision::Int8));
    let (q_out, _) = run_batched(&net, &imgs, BATCH).expect("int8 fidelity probe");
    precision::force(None);

    let argmax = |row: &[f32]| {
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    };
    let mut agree = 0usize;
    let mut max_delta = 0f32;
    let mut max_mag = 0f32;
    for (r, q) in ref_out.iter().zip(&q_out) {
        if argmax(r) == argmax(q) {
            agree += 1;
        }
        for (&rv, &qv) in r.iter().zip(q) {
            max_delta = max_delta.max((rv - qv).abs());
            max_mag = max_mag.max(rv.abs());
        }
    }
    Int8Segment {
        top1_agreement: agree as f64 / ref_out.len().max(1) as f64,
        logit_rel_delta: (max_delta / max_mag.max(1e-12)) as f64,
    }
}

fn m(name: &'static str, value: f64, kind: MetricKind, rel_tol: f64) -> SentinelMetric {
    SentinelMetric {
        name,
        value,
        kind,
        rel_tol,
    }
}

impl SentinelRun {
    /// Serialize this run as a baseline file (`--write-baseline`).
    pub fn baseline_json(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"schema\": \"{SCHEMA}\",").unwrap();
        writeln!(
            out,
            "  \"workload\": \"mini-Caffenet 32 images batch {BATCH}, {} sequential + {} x \
             {}-worker engine runs\",",
            WARM_RUNS + TIMED_RUNS,
            ENGINE_RUNS,
            ENGINE_WORKERS
        )
        .unwrap();
        writeln!(out, "  \"metrics\": {{").unwrap();
        for (i, sm) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            writeln!(
                out,
                "    \"{}\": {{ \"value\": {}, \"kind\": \"{}\", \"rel_tol\": {} }}{comma}",
                sm.name,
                fmt_f64(sm.value),
                sm.kind.tag(),
                fmt_f64(sm.rel_tol)
            )
            .unwrap();
        }
        writeln!(out, "  }}").unwrap();
        writeln!(out, "}}").unwrap();
        out
    }

    /// Hold this run against a baseline file's contents.
    ///
    /// The baseline's `kind`/`rel_tol` govern the comparison (policy is
    /// versioned with the numbers). Baseline metrics absent from the
    /// current run count as strict violations — a silently vanished
    /// counter is a pipeline-shape change too. Returns `Err` only when
    /// the baseline itself is unreadable (malformed JSON, wrong
    /// schema) — the `exit 2` path, distinct from a regression.
    pub fn compare(&self, baseline_json: &str) -> Result<Comparison, String> {
        let root: Value = serde_json::from_str(baseline_json)
            .map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
        let schema = str_field(&root, "schema")?;
        if schema != SCHEMA {
            return Err(format!("baseline schema {schema:?}, expected {SCHEMA:?}"));
        }
        let Value::Map(entries) = serde::map_field(&root, "metrics")
            .map_err(|e| format!("baseline missing \"metrics\": {e:?}"))?
        else {
            return Err("baseline \"metrics\" is not an object".into());
        };

        let mut report = String::new();
        let mut strict_violations = 0usize;
        let mut advisory_violations = 0usize;
        writeln!(
            report,
            "{:<26} {:>14} {:>14} {:>9} {:>9} {:>10}",
            "metric", "current", "baseline", "delta%", "kind", "verdict"
        )
        .unwrap();
        for (name, entry) in entries {
            let base_value = f64_field(entry, "value")
                .ok_or_else(|| format!("baseline metric {name:?} has no numeric \"value\""))?;
            let kind = MetricKind::parse(&str_field(entry, "kind").unwrap_or_default())
                .ok_or_else(|| format!("baseline metric {name:?} has an unknown \"kind\""))?;
            let rel_tol = f64_field(entry, "rel_tol").unwrap_or(0.0);

            let Some(cur) = self.metrics.iter().find(|sm| sm.name == *name) else {
                strict_violations += 1;
                writeln!(
                    report,
                    "{:<26} {:>14} {:>14.3} {:>9} {:>9} {:>10}",
                    name,
                    "MISSING",
                    base_value,
                    "-",
                    kind.tag(),
                    "VIOLATION"
                )
                .unwrap();
                continue;
            };

            let denom = base_value.abs().max(1e-12);
            let delta = (cur.value - base_value) / denom;
            let within = match kind {
                // Strict counters are integers in disguise: exact up to
                // f64 round-trip noise.
                MetricKind::Strict => delta.abs() <= 1e-9,
                MetricKind::Advisory => delta.abs() <= rel_tol,
            };
            let verdict = if within {
                "ok"
            } else {
                match kind {
                    MetricKind::Strict => {
                        strict_violations += 1;
                        "VIOLATION"
                    }
                    MetricKind::Advisory => {
                        advisory_violations += 1;
                        "suspect"
                    }
                }
            };
            writeln!(
                report,
                "{:<26} {:>14.3} {:>14.3} {:>+8.1}% {:>9} {:>10}",
                name,
                cur.value,
                base_value,
                delta * 100.0,
                kind.tag(),
                verdict
            )
            .unwrap();
        }
        writeln!(
            report,
            "\nstrict violations: {strict_violations} (gate), advisory out-of-tolerance: \
             {advisory_violations} (report-only)"
        )
        .unwrap();
        Ok(Comparison {
            report,
            strict_violations,
            advisory_violations,
        })
    }
}

fn str_field(v: &Value, name: &str) -> Result<String, String> {
    match serde::map_field(v, name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(_) => Err(format!("field {name:?} is not a string")),
        Err(e) => Err(format!("missing field {name:?}: {e:?}")),
    }
}

fn f64_field(v: &Value, name: &str) -> Option<f64> {
    match serde::map_field(v, name).ok()? {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

/// Render an f64 as JSON: integers without a fraction, everything else
/// with enough digits to round-trip.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// The `sentinel` registry entry: run the workload and report.
/// (Baseline comparison and exit codes live in the `repro` binary,
/// which owns the process boundary.)
pub fn sentinel() -> String {
    run_workload().report
}

#[cfg(test)]
mod tests {
    use super::*;

    // Comparison-policy tests run on a synthetic run: they exercise
    // pure logic and stay independent of the process-global metrics
    // registry (which sibling tests mutate concurrently). The real
    // workload's determinism and the end-to-end gate live in
    // `crates/bench/tests/sentinel_gate.rs`, serialized in their own
    // test process.
    fn fake_run() -> SentinelRun {
        SentinelRun {
            metrics: vec![
                m("forward_passes", 24.0, MetricKind::Strict, 0.0),
                m("arena_bytes", 1_048_576.0, MetricKind::Strict, 0.0),
                m("forward_latency_p50_us", 1500.0, MetricKind::Advisory, 0.50),
                m("workspace_hit_rate", 0.96875, MetricKind::Advisory, 0.05),
            ],
            report: String::new(),
        }
    }

    #[test]
    fn run_against_its_own_baseline_is_clean() {
        let run = fake_run();
        let cmp = run.compare(&run.baseline_json()).unwrap();
        assert_eq!(cmp.strict_violations, 0, "{}", cmp.report);
        assert_eq!(cmp.advisory_violations, 0, "{}", cmp.report);
    }

    /// The negative test: doctor a strict metric in the baseline and
    /// the sentinel must flag it (this is what makes CI exit nonzero).
    #[test]
    fn doctored_strict_baseline_is_a_violation() {
        let run = fake_run();
        let doctored = run
            .baseline_json()
            .replace("\"value\": 24", "\"value\": 31");
        let cmp = run.compare(&doctored).unwrap();
        assert_eq!(cmp.strict_violations, 1, "{}", cmp.report);
        assert!(cmp.report.contains("VIOLATION"), "{}", cmp.report);

        // A baseline metric the run no longer produces is a violation
        // too: deleting a counter is a shape change.
        let ghost = run
            .baseline_json()
            .replace("\"forward_passes\"", "\"forward_passes_renamed\"");
        let cmp = run.compare(&ghost).unwrap();
        assert_eq!(cmp.strict_violations, 1, "{}", cmp.report);
        assert!(cmp.report.contains("MISSING"), "{}", cmp.report);
    }

    /// Advisory drift never counts toward the gate.
    #[test]
    fn advisory_drift_is_report_only() {
        let run = fake_run();
        let doctored = run
            .baseline_json()
            .replace("\"value\": 1500", "\"value\": 150000");
        let cmp = run.compare(&doctored).unwrap();
        assert_eq!(cmp.strict_violations, 0, "{}", cmp.report);
        assert_eq!(cmp.advisory_violations, 1, "{}", cmp.report);
        assert!(cmp.report.contains("suspect"), "{}", cmp.report);
    }

    /// Drift *within* an advisory tolerance is quietly ok.
    #[test]
    fn advisory_within_tolerance_passes() {
        let run = fake_run();
        // p50 baseline 10% above the measured 1500: inside rel_tol 0.5.
        let doctored = run
            .baseline_json()
            .replace("\"value\": 1500", "\"value\": 1650");
        let cmp = run.compare(&doctored).unwrap();
        assert_eq!(cmp.advisory_violations, 0, "{}", cmp.report);
    }

    /// Unreadable baselines are a distinct failure (exit 2 in repro),
    /// not a regression verdict.
    #[test]
    fn malformed_baseline_is_an_error_not_a_verdict() {
        let run = fake_run();
        assert!(run.compare("not json at all").is_err());
        assert!(run
            .compare("{\"schema\":\"cap-sentinel-v0\",\"metrics\":{}}")
            .is_err());
        assert!(run.compare("{\"metrics\":{}}").is_err());
    }

    #[test]
    fn baseline_json_parses_and_round_trips_policy() {
        let run = fake_run();
        let json = run.baseline_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(str_field(&v, "schema").unwrap(), SCHEMA);
        let metrics = serde::map_field(&v, "metrics").unwrap();
        for sm in &run.metrics {
            let entry = serde::map_field(metrics, sm.name).unwrap();
            assert_eq!(
                str_field(entry, "kind").unwrap(),
                sm.kind.tag(),
                "{}",
                sm.name
            );
            let val = f64_field(entry, "value").unwrap();
            assert!((val - sm.value).abs() <= 1e-6 * sm.value.abs().max(1.0));
        }
    }
}
