//! Figures 11 and 12: quantifying accuracy performance with TAR and CAR.

use cap_cloud::{by_name, catalog, cost_usd};
use cap_core::{car, tar};
use cap_pruning::{caffenet_profile, PruneSpec};
use std::fmt::Write;

/// Figure 11: TAR over the conv1 × conv2 sweet-spot grid — conv1
/// 0–40 %, conv2 0–50 % in 10 % steps (30 degrees of pruning), 50 000
/// images on the reference GPU.
pub fn fig11() -> String {
    let profile = caffenet_profile();
    let mut out = String::new();
    writeln!(
        out,
        "# Figure 11: time-accuracy of degrees of pruning with TAR"
    )
    .unwrap();
    writeln!(
        out,
        "{:>8} {:>8} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "conv1", "conv2", "time min", "top1", "top5", "TAR(top1)", "TAR(top5)"
    )
    .unwrap();
    for i in 0..=4u32 {
        for j in 0..=5u32 {
            let r1 = i as f64 / 10.0;
            let r2 = j as f64 / 10.0;
            let mut spec = PruneSpec::none();
            spec.set("conv1", r1);
            spec.set("conv2", r2);
            let (top1, top5) = profile.accuracy(&spec);
            let time_s = profile.batched_s_per_image(&spec) * 50_000.0;
            writeln!(
                out,
                "{:>7.0}% {:>7.0}% {:>10.2} {:>7.1}% {:>7.1}% {:>10.1} {:>10.1}",
                r1 * 100.0,
                r2 * 100.0,
                time_s / 60.0,
                top1 * 100.0,
                top5 * 100.0,
                tar(time_s, top1),
                tar(time_s, top5)
            )
            .unwrap();
        }
    }
    writeln!(
        out,
        "\nreading: at equal accuracy, the configuration with lower TAR is the faster choice"
    )
    .unwrap();
    out
}

/// Figure 12: CAR across the six resource types for Caffenet with conv1
/// and conv2 pruned 20 %, when all GPUs are utilized vs only one GPU
/// (paying for the whole instance either way).
pub fn fig12() -> String {
    let profile = caffenet_profile();
    let spec = PruneSpec::single("conv1", 0.2).with("conv2", 0.2);
    let (top1, _top5) = profile.accuracy(&spec);
    let s_per_image = profile.batched_s_per_image(&spec);
    let w = 50_000.0;

    let mut out = String::new();
    writeln!(
        out,
        "# Figure 12: Caffenet CAR across resource types (conv1-2 @20%)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>16} {:>16}",
        "instance", "CAR all GPUs $", "CAR one GPU $"
    )
    .unwrap();
    for inst in catalog() {
        let per_gpu_rate = inst.gpu.relative_throughput() / s_per_image;
        // All GPUs: time shrinks with GPU count, full instance price.
        let t_all = w / (per_gpu_rate * inst.gpus as f64);
        let car_all = car(cost_usd(inst.price_per_hour, t_all), top1);
        // One GPU: single-GPU time, still full instance price.
        let t_one = w / per_gpu_rate;
        let car_one = car(cost_usd(inst.price_per_hour, t_one), top1);
        writeln!(out, "{:<14} {:>16.3} {:>16.3}", inst.name, car_all, car_one).unwrap();
    }
    // Category flatness check.
    let car_for = |name: &str| {
        let inst = by_name(name).unwrap();
        let per_gpu_rate = inst.gpu.relative_throughput() / s_per_image;
        let t_all = w / (per_gpu_rate * inst.gpus as f64);
        car(cost_usd(inst.price_per_hour, t_all), top1)
    };
    writeln!(
        out,
        "\nwithin-category flatness: p2 {:.3} vs {:.3}; g3 {:.3} vs {:.3}",
        car_for("p2.xlarge"),
        car_for("p2.16xlarge"),
        car_for("g3.4xlarge"),
        car_for("g3.16xlarge")
    )
    .unwrap();
    writeln!(
        out,
        "g3/p2 CAR ratio (all GPUs): {:.2} (paper: 0.35/0.57 = 0.61)",
        car_for("g3.4xlarge") / car_for("p2.xlarge")
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_grid_is_30_rows() {
        let t = fig11();
        // 5 conv1 x 6 conv2 = 30 data rows.
        let rows = t
            .lines()
            .filter(|l| l.trim_start().ends_with(|c: char| c.is_ascii_digit()) && l.contains('%'))
            .count();
        assert!(rows >= 30, "rows {rows}");
    }

    #[test]
    fn fig12_g3_cheaper_per_accuracy_than_p2() {
        let t = fig12();
        assert!(t.contains("g3/p2 CAR ratio"));
        // Parse the ratio and check it is below 1 (g3 wins).
        let line = t.lines().find(|l| l.contains("g3/p2 CAR ratio")).unwrap();
        let ratio: f64 = line
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio < 0.8, "ratio {ratio}");
    }

    #[test]
    fn fig12_one_gpu_car_grows_with_instance_size() {
        let t = fig12();
        // p2.16xlarge one-GPU CAR must exceed p2.xlarge one-GPU CAR.
        let get = |name: &str| -> f64 {
            let line = t.lines().find(|l| l.starts_with(name)).unwrap();
            line.split_whitespace().last().unwrap().parse().unwrap()
        };
        assert!(get("p2.16xlarge") > 10.0 * get("p2.xlarge"));
    }
}
