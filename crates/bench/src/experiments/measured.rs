//! Measured-track experiments: no calibrated profiles involved — a
//! really-trained CNN, really pruned, really executed.

use cap_cnn::models::TinyNet;
use cap_cnn::train::Sgd;
use cap_data::SyntheticImageNet;
use cap_pruning::magnitude::sparsity_mask;
use cap_pruning::prune_magnitude;
use std::fmt::Write;
use std::time::Instant;

pub(crate) fn train(data: &SyntheticImageNet, seed: u64) -> TinyNet {
    let mut net = TinyNet::new(data.image_shape, 8, 12, data.classes, seed).expect("shape ok");
    let mut sgd = Sgd::new(0.03, 0.9);
    for _epoch in 0..5 {
        for b in 0..8 {
            let (x, labels) = data.batch(b * 32, 32);
            net.train_batch(&x, &labels, &mut sgd, None)
                .expect("train step");
        }
    }
    net
}

fn clone_net(from: &TinyNet, data: &SyntheticImageNet, seed: u64) -> TinyNet {
    let mut to = TinyNet::new(data.image_shape, 8, 12, data.classes, seed).unwrap();
    to.conv1_w = from.conv1_w.clone();
    to.conv1_b = from.conv1_b.clone();
    to.conv2_w = from.conv2_w.clone();
    to.conv2_b = from.conv2_b.clone();
    to.fc_w = from.fc_w.clone();
    to.fc_b = from.fc_b.clone();
    to
}

/// Figure 6, measured: prune a really-trained TinyNet's convolution
/// layers across the standard ratio grid (with brief masked fine-tuning,
/// as the paper's pruning tool chain does) and record measured accuracy
/// and measured dense/sparse batch latency.
pub fn fig6m() -> String {
    let data = SyntheticImageNet::tiny(2026);
    let net = train(&data, 7);
    let (test_x, test_labels) = data.batch(10_000, 128);
    let base = net.evaluate(&test_x, &test_labels).expect("eval");

    let mut out = String::new();
    writeln!(
        out,
        "# Figure 6 (measured): TinyNet pruning, trained on synthetic data"
    )
    .unwrap();
    writeln!(
        out,
        "baseline: top1 {:.1}%, top5 {:.1}% over {} held-out images",
        base.top1 * 100.0,
        base.top5 * 100.0,
        base.n
    )
    .unwrap();
    writeln!(
        out,
        "\n{:>6} {:>10} {:>8} {:>8} {:>11} {:>11}",
        "ratio", "sparsity", "top1", "top5", "dense ms", "sparse ms"
    )
    .unwrap();
    for i in 0..=9u32 {
        let ratio = i as f64 / 10.0;
        let mut pruned = clone_net(&net, &data, 7);
        prune_magnitude(&mut pruned.conv1_w, ratio).unwrap();
        prune_magnitude(&mut pruned.conv2_w, ratio).unwrap();
        if ratio > 0.0 {
            let m1 = sparsity_mask(&pruned.conv1_w);
            let m2 = sparsity_mask(&pruned.conv2_w);
            let mut ft = Sgd::new(0.01, 0.9);
            for b in 0..4 {
                let (x, labels) = data.batch(b * 32, 32);
                pruned
                    .train_batch(&x, &labels, &mut ft, Some((&m1, &m2)))
                    .unwrap();
            }
        }
        let report = pruned.evaluate(&test_x, &test_labels).unwrap();
        // Min-of-3 timing per §3.3.
        let mut dense_ms = f64::INFINITY;
        let mut sparse_ms = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            pruned.logits(&test_x).unwrap();
            dense_ms = dense_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
            let t1 = Instant::now();
            pruned.logits_sparse(&test_x).unwrap();
            sparse_ms = sparse_ms.min(t1.elapsed().as_secs_f64() * 1000.0);
        }
        writeln!(
            out,
            "{:>5.0}% {:>9.1}% {:>7.1}% {:>7.1}% {:>11.2} {:>11.2}",
            ratio * 100.0,
            pruned.conv_sparsity() * 100.0,
            report.top1 * 100.0,
            report.top5 * 100.0,
            dense_ms,
            sparse_ms
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nmeasured sweet-spot shape: accuracy plateaus at moderate ratios and cliffs near 90%;"
    )
    .unwrap();
    writeln!(
        out,
        "sparse CSR kernels overtake dense execution as sparsity grows."
    )
    .unwrap();
    out
}

/// Figure 5, measured: throughput of the implemented framework versus
/// batch size ("parallel inferences" on the CPU substrate).
pub fn fig5m() -> String {
    let data = SyntheticImageNet::tiny(11);
    let net = train(&data, 3);
    let (imgs, _) = data.batch(20_000, 256);
    let mut out = String::new();
    writeln!(
        out,
        "# Figure 5 (measured): TinyNet throughput vs batch size"
    )
    .unwrap();
    writeln!(out, "{:>7} {:>14}", "batch", "images/s").unwrap();
    let mut first = 0.0;
    let mut last = 0.0;
    for &b in &[1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let mut best = 0.0_f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            // Batched execution through the real conv kernels.
            let mut i = 0;
            while i < imgs.n() {
                let take = b.min(imgs.n() - i);
                let mut chunk = cap_tensor::Tensor4::zeros(take, 3, 16, 16);
                for j in 0..take {
                    chunk.image_mut(j).copy_from_slice(imgs.image(i + j));
                }
                net.logits(&chunk).unwrap();
                i += take;
            }
            let rate = imgs.n() as f64 / t0.elapsed().as_secs_f64();
            best = best.max(rate);
        }
        if b == 1 {
            first = best;
        }
        last = best;
        writeln!(out, "{:>7} {:>14.0}", b, best).unwrap();
    }
    writeln!(
        out,
        "\nbatching speedup at saturation: {:.1}x (paper's GPU curve: ~2.8x, saturating at ~300)",
        last / first.max(1e-9)
    )
    .unwrap();
    out
}

/// Figure 8, measured: multi-layer pruning on a really-trained
/// three-conv "mini-Caffenet" (SequentialNet) — nonpruned vs first-two
/// layers vs all conv layers, with measured accuracy and latency.
pub fn fig8m() -> String {
    use cap_cnn::train::{SequentialBuilder, SequentialNet};
    use cap_pruning::prune_magnitude as prune;

    let data = SyntheticImageNet {
        classes: 8,
        image_shape: (3, 16, 16),
        seed: 909,
        noise: 0.8,
    };
    let mut net = SequentialBuilder::new(data.image_shape, 77)
        .conv(8, 3, 1)
        .relu()
        .maxpool(2)
        .conv(12, 3, 1)
        .relu()
        .maxpool(2)
        .conv(12, 3, 1)
        .relu()
        .fc(data.classes)
        .expect("geometry valid");
    let mut sgd = Sgd::new(0.03, 0.9);
    for _epoch in 0..6 {
        for b in 0..8 {
            let (x, labels) = data.batch(b * 32, 32);
            net.train_batch(&x, &labels, &mut sgd, None)
                .expect("train step");
        }
    }
    let (test_x, test_labels) = data.batch(12_000, 128);

    let conv_indices = net.weighted_layer_indices();
    let convs = &conv_indices[..conv_indices.len() - 1]; // drop the fc head
    let variants: Vec<(&str, Vec<usize>)> = vec![
        ("nonpruned", vec![]),
        ("conv1-2 @85%", convs[..2].to_vec()),
        ("all-conv @85%", convs.to_vec()),
    ];

    let mut out = String::new();
    writeln!(
        out,
        "# Figure 8 (measured): multi-layer pruning on a 3-conv SequentialNet"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>11}",
        "config", "top1", "top5", "latency ms"
    )
    .unwrap();
    for (name, idxs) in variants {
        let mut pruned: SequentialNet = net.clone();
        for &i in &idxs {
            prune(pruned.layer_mut(i).unwrap().weights_mut().unwrap(), 0.85).unwrap();
        }
        let report = pruned.evaluate(&test_x, &test_labels).expect("eval");
        let mut ms = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            pruned.logits(&test_x).unwrap();
            ms = ms.min(t.elapsed().as_secs_f64() * 1000.0);
        }
        writeln!(
            out,
            "{:<14} {:>7.1}% {:>7.1}% {:>11.2}",
            name,
            report.top1 * 100.0,
            report.top5 * 100.0,
            ms
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nObservation 3, measured: combining layers costs at least as much accuracy\nas the worst single layer, while latency falls further."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    // fig6m/fig5m are exercised by the repro binary and the experiments
    // registry test; their building blocks are unit-tested in cap-cnn
    // and cap-pruning. Here we only check they produce plausible output
    // quickly enough for CI when run explicitly.
    #[test]
    #[ignore = "several seconds of training; run with --ignored"]
    fn fig6m_runs() {
        let out = super::fig6m();
        assert!(out.contains("baseline"));
        assert!(out.lines().count() > 12);
    }
}
