//! Per-layer profiling through the observability layer: the
//! acceptance experiment for `cap-obs`. Attaches a
//! [`CollectingTracer`] to real Caffenet forward passes at 0% and 60%
//! uniform convolution pruning, renders both [`ProfileReport`]s as
//! text tables and JSON, diffs them, and dumps the global metrics
//! snapshot gathered along the way.

use cap_cnn::models::{caffenet, WeightInit};
use cap_cnn::{CollectingTracer, ForwardArena, LayerKind, Network, ProfileReport};
use cap_obs::{SpanRecord, TimingGuard};
use cap_pruning::{apply_to_network, PruneAlgorithm, PruneSpec};
use cap_tensor::Tensor4;
use std::fmt::Write;

/// Timed passes per report. One warm-up pass precedes them so the
/// arena and weight pages are faulted in before any span is recorded.
const PASSES: usize = 3;

/// Run `PASSES` traced forward passes into the shared `tracer`, drain
/// its spans, and aggregate them into a [`ProfileReport`] (per-layer
/// `calls` = `PASSES`, so `mean()` is the mean over warm passes).
///
/// The tracer is shared across calls so every span's start offset is
/// measured from one common epoch — that keeps the dense and pruned
/// sections of the `--trace-out` timeline on a single consistent time
/// axis instead of two overlapping ones.
fn profile(
    net: &Network,
    input: &Tensor4,
    label: &str,
    tracer: &CollectingTracer,
) -> (ProfileReport, Vec<SpanRecord>) {
    let mut arena = ForwardArena::new();
    // Warm-up: untraced, absorbs arena growth and first-touch faults.
    net.forward_into(input, &mut arena)
        .expect("warm-up forward");
    for _ in 0..PASSES {
        net.forward_into_traced(input, &mut arena, tracer)
            .expect("traced forward");
    }
    let spans = tracer.take_spans();
    (ProfileReport::from_spans(label, &spans), spans)
}

/// The `profile` experiment: per-layer time tables for Caffenet at 0%
/// and 60% pruning, produced by the tracer rather than any bespoke
/// timer, plus the JSON exports and the metrics-registry snapshot.
pub fn profile_caffenet() -> String {
    profile_caffenet_with_trace().0
}

/// [`profile_caffenet`] plus the raw spans behind the report, in
/// chronological order on one shared epoch — what `repro --exp profile
/// --trace-out <path>` feeds to [`cap_obs::chrome_trace_json`].
pub fn profile_caffenet_with_trace() -> (String, Vec<SpanRecord>) {
    // Histograms (forward latency, per-layer time, GEMM/im2col split)
    // only record while a TimingGuard is live.
    let _timing = TimingGuard::enable();
    cap_obs::metrics().reset();

    let dense = caffenet(WeightInit::Gaussian {
        std: 0.01,
        seed: 42,
    })
    .expect("caffenet builds");
    let input = Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
        ((c * 13 + h * 3 + w) % 23) as f32 / 23.0 - 0.5
    });

    // Same seed => identical weights before pruning.
    let mut pruned = caffenet(WeightInit::Gaussian {
        std: 0.01,
        seed: 42,
    })
    .expect("caffenet builds");
    let convs = pruned.layers_of_kind(LayerKind::Convolution);
    let spec = PruneSpec::uniform(&convs, 0.6);
    apply_to_network(&mut pruned, &spec, PruneAlgorithm::FilterL1).expect("pruning applies");

    let tracer = CollectingTracer::new();
    let (report0, mut spans) = profile(&dense, &input, "caffenet @ 0%", &tracer);
    let (report60, spans60) = profile(&pruned, &input, "caffenet @ 60% conv pruning", &tracer);
    spans.extend(spans60);

    let mut out = String::new();
    writeln!(out, "# Per-layer profile via the tracer (cap-obs)").unwrap();
    writeln!(
        out,
        "\n{} warm passes per report, batch 1, 3x224x224 input.\n",
        PASSES
    )
    .unwrap();
    out.push_str(&report0.to_text_table());
    out.push('\n');
    out.push_str(&report60.to_text_table());
    out.push('\n');
    out.push_str(&report0.compare_table(&report60));

    writeln!(out, "\n## JSON exports\n").unwrap();
    writeln!(out, "{}", report0.to_json()).unwrap();
    writeln!(out, "{}", report60.to_json()).unwrap();

    writeln!(out, "\n## Metrics registry snapshot\n").unwrap();
    let snap = cap_obs::metrics().snapshot();
    out.push_str(&snap.to_text());
    writeln!(out, "\njson: {}", snap.to_json()).unwrap();
    (out, spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_report_covers_caffenet_layers() {
        let net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 1 }).unwrap();
        let input = Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
            ((c + h + w) % 11) as f32 / 11.0 - 0.5
        });
        let tracer = CollectingTracer::new();
        let (report, spans) = profile(&net, &input, "caffenet", &tracer);
        // Every executed step shows up exactly once, with
        // calls == PASSES. Under the default fusion mode each fused
        // producer→ReLU pair is one step, so the absorbed ReLU nodes
        // account for the difference to the DAG node count.
        let fused = report.layers().iter().filter(|l| l.fused).count();
        assert_eq!(
            report.layers().len() + fused,
            net.layer_names().count(),
            "steps + absorbed relus must cover every DAG node"
        );
        assert!(report.layers().iter().all(|l| l.calls == PASSES as u64));
        // The raw spans behind the report are exposed for --trace-out:
        // PASSES forward spans plus PASSES spans per layer, each
        // stamped with a start offset and a thread id.
        let forwards = spans
            .iter()
            .filter(|s| s.scope == cap_obs::SpanScope::Forward)
            .count();
        assert_eq!(forwards, PASSES);
        assert!(spans.iter().all(|s| s.tid > 0));
        let conv_share: f64 = net
            .layers_of_kind(LayerKind::Convolution)
            .iter()
            .map(|name| report.share(name).unwrap())
            .sum();
        assert!(conv_share > 0.2, "conv share {conv_share}");
    }
}
