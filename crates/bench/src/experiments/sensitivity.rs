//! Figures 6–8: pruning sensitivity, single- and multi-layer.

use cap_cnn::models::GOOGLENET_SELECTED_LAYERS;
use cap_pruning::sensitivity::{standard_ratio_grid, sweep_layers};
use cap_pruning::{caffenet_profile, googlenet_profile, AppProfile, PruneSpec};
use std::fmt::Write;

fn sweep_report(profile: &AppProfile, layers: &[&str], title: &str) -> String {
    let grid = standard_ratio_grid();
    let sweeps = sweep_layers(profile, layers, &grid);
    let base_minutes = profile.base_batched_s_per_image * 50_000.0 / 60.0;
    let mut out = String::new();
    writeln!(out, "# {title}").unwrap();
    writeln!(
        out,
        "(50 000 images on the reference GPU; base {base_minutes:.1} min)"
    )
    .unwrap();
    for sweep in &sweeps {
        writeln!(out, "\n## {}", sweep.layer).unwrap();
        writeln!(
            out,
            "{:>7} {:>10} {:>8} {:>8}",
            "ratio", "time min", "top1", "top5"
        )
        .unwrap();
        for p in &sweep.points {
            writeln!(
                out,
                "{:>6.0}% {:>10.2} {:>7.1}% {:>7.1}%",
                p.ratio * 100.0,
                base_minutes * p.time_factor,
                p.top1 * 100.0,
                p.top5 * 100.0
            )
            .unwrap();
        }
        // Sweet-spot line.
        if let Some(ss) = cap_pruning::sweet_spot(&sweep.top5_curve(), &sweep.time_curve(), 1e-9) {
            writeln!(
                out,
                "sweet spot: up to {:.0}% pruning at unchanged accuracy ({:.2} min)",
                ss.last_ratio * 100.0,
                base_minutes * ss.time_factor_at_last
            )
            .unwrap();
        }
    }
    out
}

/// Figure 6: Caffenet per-layer pruning sweeps (all five conv layers).
pub fn fig6() -> String {
    let profile = caffenet_profile();
    let layers = profile.conv_layer_names();
    let mut out = sweep_report(&profile, &layers, "Figure 6: Caffenet single-layer pruning");
    writeln!(
        out,
        "\npaper anchors: conv1@90 -> 16.6 min, conv2@90 -> 14 min; conv1 top5 -> 0%, others -> ~25%"
    )
    .unwrap();
    out
}

/// Figure 7: Googlenet per-layer pruning sweeps (the paper's six
/// selected layers).
pub fn fig7() -> String {
    let profile = googlenet_profile();
    let mut out = sweep_report(
        &profile,
        &GOOGLENET_SELECTED_LAYERS,
        "Figure 7: Googlenet single-layer pruning (selected layers)",
    );
    writeln!(
        out,
        "\npaper anchors: conv2-3x3@90 -> ~9 min (from 13); accuracy flat to ~60% pruning"
    )
    .unwrap();
    out
}

/// Figure 8: multi-layer pruning — nonpruned vs conv1-2 vs all-conv.
pub fn fig8() -> String {
    let profile = caffenet_profile();
    let configs = [
        ("nonpruned", PruneSpec::none()),
        (
            "conv1-2",
            PruneSpec::single("conv1", 0.3).with("conv2", 0.5),
        ),
        ("all-conv", profile.all_knees_spec()),
    ];
    let mut out = String::new();
    writeln!(out, "# Figure 8: Caffenet multi-layer pruning").unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>8} {:>8}",
        "config", "time min", "top1", "top5"
    )
    .unwrap();
    for (name, spec) in configs {
        let minutes = profile.batched_s_per_image(&spec) * 50_000.0 / 60.0;
        let (top1, top5) = profile.accuracy(&spec);
        writeln!(
            out,
            "{:<12} {:>10.1} {:>7.1}% {:>7.1}%",
            name,
            minutes,
            top1 * 100.0,
            top5 * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "\npaper anchors: 19 / 13 / 11 min and top5 80 / 70 / 62 %"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_covers_all_five_layers() {
        let t = fig6();
        for l in ["conv1", "conv2", "conv3", "conv4", "conv5"] {
            assert!(t.contains(&format!("## {l}")), "missing {l}");
        }
        assert!(t.contains("sweet spot"));
    }

    #[test]
    fn fig7_covers_selected_layers() {
        let t = fig7();
        for l in GOOGLENET_SELECTED_LAYERS {
            assert!(t.contains(l), "missing {l}");
        }
    }

    #[test]
    fn fig8_matches_paper_minutes() {
        let t = fig8();
        assert!(t.contains("19.0"));
        assert!(t.contains("13.0"));
        assert!(t.contains("11.0"));
    }
}
