//! Int8 quantization ablation: the *executed* member of the paper's
//! §2.1 quantization knob family (`cap_pruning::quantize` is the
//! simulated one). Three sections:
//!
//! 1. **Kernel arm** — f32 packed GEMM vs int8 packed GEMM on
//!    conv-shaped problems, per dispatch path. The int8 timing
//!    includes the runtime activation quantize (weights are pre-packed
//!    in both arms), so the ratio is what a conv layer actually sees.
//! 2. **Network arm** — a really-trained TinyNet converted to a layer
//!    [`cap_cnn::network::Network`] and run twice through the *same*
//!    code path: `CAP_TENSOR_PRECISION` f32 vs int8 (forced via
//!    `precision::force`). Measured top-1/top-5 delta and throughput.
//! 3. **Joint frontier** — a [`PrecisionModel`] built from the TinyNet
//!    accuracy drops and the conv2-like kernel speedup (TinyNet's toy
//!    GEMMs are quantize-overhead-bound, so its throughput ratio is
//!    not representative of paper-scale layers); crossing it with the
//!    calibrated Caffenet 60-version grid yields the 120-cell joint
//!    prune × precision space, its Pareto frontier, and the
//!    accuracy-floor sweet-spot map (`cap_core::joint`).
//!
//! Numbers are measured on this host, min-of-repeats; on a non-AVX2
//! host the kernel table degenerates to the scalar arm only.

use super::kernels_exp::best_secs;
use super::measured::train;
use cap_cnn::{evaluate_topk, run_batched};
use cap_core::{caffenet_version_grid, joint_frontier, joint_grid, sweet_spots, PrecisionModel};
use cap_data::SyntheticImageNet;
use cap_pruning::profile::caffenet_profile;
use cap_tensor::kernels::{self, Epilogue};
use cap_tensor::{
    gemm_i8, gemm_prepacked, precision, quantize_rows_into, symmetric_scale, CalibrationMethod,
    Matrix, PackedB, PackedBI8, Precision,
};
use std::fmt::Write;
use std::time::Instant;

/// Conv-shaped GEMM problems, `(label, m, k, n)`: Caffenet's conv2 /
/// conv3 im2col shapes plus a batch-1 FC slice (GEMV route).
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("conv2-like 256x1200x729", 256, 1200, 729),
    ("conv3-like 384x2304x169", 384, 2304, 169),
    ("fc batch-1 1x4096x1000", 1, 4096, 1000),
];

fn deterministic_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 17 + salt) % 29) as f32 - 14.0) / 15.0
    })
}

fn scores_matrix(outputs: &[Vec<f32>]) -> Matrix {
    let classes = outputs.first().map_or(0, Vec::len);
    let flat: Vec<f32> = outputs.iter().flatten().copied().collect();
    Matrix::from_vec(outputs.len(), classes, flat).expect("rectangular logits")
}

/// The `quantize` registry entry.
pub fn quantize_ablation() -> String {
    let mut out = String::new();
    writeln!(out, "# Int8 ablation: quantized kernels + joint frontier").unwrap();

    // --- 1. Kernel arm -----------------------------------------------------
    let paths = kernels::available_paths();
    let dispatched = kernels::selected();
    // int8/f32 ratio on the conv2-like shape under the dispatched path:
    // the speedup a Caffenet-scale conv layer sees, fed to the joint
    // model below (TinyNet's toy GEMMs are quantize-overhead-bound).
    let mut conv_speedup = 1.0_f64;
    writeln!(
        out,
        "\n## Packed GEMM, f32 vs int8 (GOP/s, best of repeated runs)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} {:>9} {:>10} {:>10} {:>8}",
        "shape", "path", "f32", "int8", "int8/f32"
    )
    .unwrap();
    for &(label, m, k, n) in SHAPES {
        let a = deterministic_matrix(m, k, 1);
        let b = deterministic_matrix(k, n, 2);
        let pb_f32 = PackedB::pack(&b);
        let w_scale = symmetric_scale(b.as_slice());
        let pb_i8 = PackedBI8::pack(&b, w_scale);
        let a_scale = symmetric_scale(a.as_slice());
        let mut c = Matrix::zeros(m, n);
        let ops = 2.0 * m as f64 * k as f64 * n as f64;
        for &p in &paths {
            kernels::force(Some(p));
            let f32_secs = best_secs(|| gemm_prepacked(&a, &pb_f32, &mut c).unwrap());
            let mut qa: Vec<i8> = Vec::new();
            let int8_secs = best_secs(|| {
                let kp = quantize_rows_into(a.as_slice(), m, k, 1.0 / a_scale, &mut qa);
                gemm_i8(
                    &qa,
                    m,
                    kp,
                    n,
                    pb_i8.data(),
                    c.as_mut_slice(),
                    pb_i8.scale() * a_scale,
                    Epilogue::NONE,
                )
                .unwrap();
            });
            kernels::force(None);
            if label.starts_with("conv2") && p == dispatched {
                conv_speedup = f32_secs / int8_secs;
            }
            writeln!(
                out,
                "{label:<26} {:>9} {:>10.2} {:>10.2} {:>7.2}x",
                p.name(),
                ops / f32_secs / 1e9,
                ops / int8_secs / 1e9,
                f32_secs / int8_secs
            )
            .unwrap();
        }
    }

    // --- 2. Network arm ----------------------------------------------------
    writeln!(out, "\n## TinyNet end-to-end: f32 vs int8 (same weights)").unwrap();
    let data = SyntheticImageNet::tiny(2026);
    let tiny = train(&data, 7);
    let net = tiny.to_network().expect("tinynet as layer network");
    let (test_x, test_labels) = data.batch(10_000, 256);
    let (cal_x, _) = data.batch(30_000, 64);
    net.calibrate(&cal_x, CalibrationMethod::MaxAbs)
        .expect("calibration pass");

    let mut arms = Vec::new();
    for (name, prec) in [("f32", None), ("int8", Some(Precision::Int8))] {
        precision::force(prec);
        let (outputs, _) = run_batched(&net, &test_x, 64).unwrap(); // warm
        let mut secs = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            run_batched(&net, &test_x, 64).unwrap();
            secs = secs.min(t.elapsed().as_secs_f64());
        }
        precision::force(None);
        let acc = evaluate_topk(&scores_matrix(&outputs), &test_labels).unwrap();
        let s_per_img = secs / test_x.shape().0 as f64;
        writeln!(
            out,
            "{name:<6} top1 {:>5.1}%  top5 {:>5.1}%  {:>8.1} img/s  ({:.1} us/img)",
            acc.top1 * 100.0,
            acc.top5 * 100.0,
            1.0 / s_per_img,
            s_per_img * 1e6
        )
        .unwrap();
        arms.push((acc.top1, acc.top5, s_per_img));
    }
    let net_model = PrecisionModel::from_measured(arms[0], arms[1]);
    writeln!(
        out,
        "tinynet arms: int8/f32 throughput {:.2}x, top1 drop {:+.2} pp, top5 drop {:+.2} pp",
        net_model.speedup,
        net_model.top1_drop * 100.0,
        net_model.top5_drop * 100.0
    )
    .unwrap();
    // TinyNet's GEMMs are far below the size where int8 pays for its
    // runtime activation quantize, so its throughput ratio is not
    // representative of a Caffenet-scale layer. The joint model takes
    // the accuracy drops from the TinyNet arms (really executed, same
    // weights) and the speedup from the conv2-like kernel measurement —
    // the same reference-machine scaling the paper uses for its grid.
    let model = PrecisionModel {
        speedup: conv_speedup,
        ..net_model
    };
    writeln!(
        out,
        "joint model: speedup {:.2}x (conv2-like kernel, {} path), drops from tinynet arms",
        model.speedup,
        dispatched.name()
    )
    .unwrap();
    writeln!(
        out,
        "precision_path gauge now reads: {}",
        cap_obs::metrics::precision_path_name(cap_obs::metrics().precision_path.get())
    )
    .unwrap();

    // --- 3. Joint frontier -------------------------------------------------
    writeln!(
        out,
        "\n## Joint prune x precision space (Caffenet profile x measured model)"
    )
    .unwrap();
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let grid = joint_grid(&versions, &model);
    let frontier = joint_frontier(&grid);
    let int8_on_frontier = frontier
        .indices()
        .iter()
        .filter(|&&i| grid[i].precision == "int8")
        .count();
    writeln!(
        out,
        "{} cells ({} versions x 2 precisions); frontier keeps {} ({} int8, {} f32)",
        grid.len(),
        versions.len(),
        frontier.len(),
        int8_on_frontier,
        frontier.len() - int8_on_frontier
    )
    .unwrap();
    writeln!(
        out,
        "\n{:<34} {:>7} {:>7} {:>12}",
        "frontier cell", "top1", "top5", "s/img (ref)"
    )
    .unwrap();
    for &i in frontier.indices().iter().take(12) {
        let p = &grid[i];
        writeln!(
            out,
            "{:<34} {:>6.1}% {:>6.1}% {:>12.5}",
            p.label(),
            p.top1 * 100.0,
            p.top5 * 100.0,
            p.s_per_image
        )
        .unwrap();
    }
    if frontier.len() > 12 {
        writeln!(out, "... ({} more frontier cells)", frontier.len() - 12).unwrap();
    }

    let top = grid.iter().map(|p| p.top1).fold(0.0f64, f64::max);
    let floors = [top, top - 0.05, top - 0.10, top - 0.15];
    writeln!(out, "\nsweet spots (fastest cell above each top-1 floor):").unwrap();
    for (floor, pick) in sweet_spots(&grid, &floors) {
        match pick {
            Some(i) => writeln!(
                out,
                "  top1 >= {:>5.1}%  ->  {}  ({:.5} s/img)",
                floor * 100.0,
                grid[i].label(),
                grid[i].s_per_image
            )
            .unwrap(),
            None => writeln!(out, "  top1 >= {:>5.1}%  ->  unreachable", floor * 100.0).unwrap(),
        }
    }
    writeln!(
        out,
        "\nreading: int8 cells join the frontier wherever the measured quantization drop\n\
         costs less accuracy than the extra pruning a pure-f32 configuration would need\n\
         to match the speedup; with a near-zero measured drop the int8 arm dominates\n\
         every f32 cell outright."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    #[test]
    #[ignore = "several seconds of training + timing; run with --ignored"]
    fn quantize_ablation_runs() {
        let out = super::quantize_ablation();
        assert!(out.contains("int8/f32"), "{out}");
        assert!(out.contains("frontier keeps"), "{out}");
        assert!(out.contains("sweet spots"), "{out}");
        // Force must be restored for later tests in this process.
        assert_eq!(
            cap_tensor::precision::selected(),
            cap_tensor::Precision::F32
        );
    }
}
