//! Layer-fusion ablation: the graph-level `conv → relu` / `fc → relu`
//! fusion pass (`CAP_TENSOR_FUSION`, PR 6) off vs on, on the same
//! network, weights, and kernel path — so the measured delta is pure
//! memory-traffic savings from skipping the intermediate activation
//! round-trip, never an accuracy trade (the fused pass is bit-identical
//! by the contract proved in `crates/cnn/tests/fusion_parity_net.rs`).
//!
//! Batch 1 is the headline arm: at batch 1 every GEMM in the FC head
//! degenerates to a matvec and the whole forward is memory-bound, which
//! is exactly where fusing the bias/ReLU epilogue into the kernel store
//! pays the most.

use super::kernels_exp::best_secs;
use super::scaling_exp::{mini_caffenet, workload};
use cap_cnn::fusion::{self, FusionMode};
use cap_cnn::{run_batched, LayerKind};
use cap_pruning::{apply_to_network, PruneAlgorithm, PruneSpec};
use cap_tensor::{kernels, Tensor4};
use std::fmt::Write;

/// Run `f` with the fusion pass pinned to `mode`, restoring the
/// environment-driven selection afterwards.
fn on_mode<T>(mode: FusionMode, f: impl FnOnce() -> T) -> T {
    fusion::force(Some(mode));
    let out = f();
    fusion::force(None);
    out
}

/// Images/s of `net` over `imgs` at `batch` under `mode`, after one
/// warm-up pass on that mode (plan build, weight packing, arenas).
fn rate(mode: FusionMode, net: &cap_cnn::Network, imgs: &Tensor4, batch: usize) -> f64 {
    on_mode(mode, || {
        run_batched(net, imgs, batch).unwrap();
        let secs = best_secs(|| {
            run_batched(net, imgs, batch).unwrap();
        });
        imgs.n() as f64 / secs
    })
}

/// The `fusion` registry entry: fusion-off vs fusion-on ablation.
pub fn fusion_ablation() -> String {
    let mut out = String::new();
    writeln!(out, "# Layer-fusion ablation: CAP_TENSOR_FUSION off vs on").unwrap();
    writeln!(
        out,
        "\nkernel path: {} (same on both arms); fusion default: {}",
        kernels::selected().name(),
        fusion::selected().name()
    )
    .unwrap();

    let dense = mini_caffenet();
    let mut pruned = mini_caffenet();
    let convs = pruned.layers_of_kind(LayerKind::Convolution);
    let spec = PruneSpec::uniform(&convs, 0.6);
    apply_to_network(&mut pruned, &spec, PruneAlgorithm::FilterL1).expect("pruning applies");

    // How many producer→relu pairs the plan collapses (gauge is set by
    // every traced pass, run_batched included).
    on_mode(FusionMode::Auto, || {
        let one = Tensor4::from_fn(1, 3, 64, 64, |_, c, h, w| {
            ((c * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
        });
        run_batched(&dense, &one, 1).unwrap();
    });
    writeln!(
        out,
        "fused producer→relu pairs (mini-Caffenet): {}",
        cap_obs::metrics().snapshot().fused_layers
    )
    .unwrap();

    writeln!(
        out,
        "\n## End-to-end mini-Caffenet forward (images/s, best of repeated runs)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<34} {:>10} {:>10} {:>9}",
        "arm", "off", "on", "speedup"
    )
    .unwrap();

    let batch8 = workload();
    let one = Tensor4::from_fn(1, 3, 64, 64, |_, c, h, w| {
        ((c * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
    });
    let arms: [(&str, &cap_cnn::Network, &Tensor4, usize); 4] = [
        ("dense, batch 1", &dense, &one, 1),
        ("dense, batch 8", &dense, &batch8, 8),
        ("60% conv-pruned, batch 1", &pruned, &one, 1),
        ("60% conv-pruned, batch 8", &pruned, &batch8, 8),
    ];
    for (label, net, imgs, batch) in arms {
        let off = rate(FusionMode::Off, net, imgs, batch);
        let on = rate(FusionMode::On, net, imgs, batch);
        writeln!(
            out,
            "{label:<34} {off:>10.1} {on:>10.1} {:>8.2}x",
            on / off.max(1e-12)
        )
        .unwrap();
    }

    writeln!(
        out,
        "\nparity contract: fused and unfused passes are bitwise identical \
         (crates/cnn/tests/fusion_parity_net.rs, crates/tensor/tests/fused_parity.rs); \
         speedups are memory-traffic effects only."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_both_arms_and_restores_selection() {
        let out = fusion_ablation();
        assert!(out.contains("off vs on"), "{out}");
        assert!(out.contains("dense, batch 1"), "{out}");
        assert!(out.contains("60% conv-pruned, batch 1"), "{out}");
        assert!(out.contains("fused producer→relu pairs"), "{out}");
        // Force must have been restored for later tests in this process:
        // the selection is back to the environment-driven default.
        let env_off = std::env::var("CAP_TENSOR_FUSION").as_deref() == Ok("off");
        assert_eq!(fusion::selected().enabled(), !env_off);
    }
}
