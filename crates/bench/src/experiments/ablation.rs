//! Ablations of the design choices DESIGN.md §9 calls out: the greedy
//! ordering heuristic of Algorithm 1, and pruning versus the two
//! alternative accuracy knobs the paper's related work discusses.

use cap_cloud::{catalog, InstanceType};
use cap_core::{
    allocate_ordered, caffenet_version_grid, AccuracyMetric, AllocationRequest, GreedyOrder,
};
use cap_pruning::{
    caffenet_profile, prune_magnitude, quantization_damage, quantize_uniform, share_weights,
    PruneSpec,
};
use cap_tensor::Matrix;
use std::fmt::Write;

/// Ablation A: Algorithm 1's CAR ordering vs naive orderings.
pub fn ablation_alloc() -> String {
    let versions = caffenet_version_grid(&caffenet_profile());
    let cat = catalog();
    // Heterogeneous pool: 2 of each type.
    let pool: Vec<InstanceType> = cat
        .iter()
        .flat_map(|i| std::iter::repeat_n(i.clone(), 2))
        .collect();
    let mut out = String::new();
    writeln!(out, "# Ablation: greedy resource ordering in Algorithm 1").unwrap();
    writeln!(
        out,
        "{:<22} {:>10} {:>10} {:>9} {:>7}",
        "ordering", "cost $", "time h", "acc", "evals"
    )
    .unwrap();
    for (deadline_h, budget) in [(12.0, 500.0), (2.0, 500.0), (12.0, 6.0)] {
        writeln!(
            out,
            "\nconstraints: {deadline_h} h deadline, ${budget} budget"
        )
        .unwrap();
        for order in [
            GreedyOrder::CarAscending,
            GreedyOrder::PriceAscending,
            GreedyOrder::ThroughputDescending,
            GreedyOrder::AsGiven,
        ] {
            let r = allocate_ordered(
                &versions,
                &pool,
                &AllocationRequest {
                    w: 1_000_000,
                    batch: 512,
                    deadline_s: deadline_h * 3600.0,
                    budget_usd: budget,
                    metric: AccuracyMetric::Top1,
                },
                order,
            );
            match r {
                Some(r) => writeln!(
                    out,
                    "{:<22} {:>10.2} {:>10.2} {:>8.1}% {:>7}",
                    format!("{order:?}"),
                    r.cost_usd,
                    r.time_s / 3600.0,
                    versions[r.version_idx].top1 * 100.0,
                    r.evaluations
                )
                .unwrap(),
                None => writeln!(out, "{:<22} infeasible", format!("{order:?}")).unwrap(),
            }
        }
    }
    writeln!(
        out,
        "\nreading: CAR ordering matches the best accuracy everywhere and pays the least\nwhen the budget binds; throughput ordering overspends, price ordering straggles."
    )
    .unwrap();
    out
}

/// Ablation B: pruning vs quantization vs weight sharing as the accuracy
/// knob, on a Caffenet-conv2-shaped weight matrix — the §2.1 comparison
/// the paper argues qualitatively, here with measured reconstruction
/// error and modelled time/memory effects.
pub fn ablation_knobs() -> String {
    let base = Matrix::from_fn(256, 1200, |r, c| {
        ((r * 31 + c * 7) % 101) as f32 / 101.0 - 0.5
    });
    let profile = caffenet_profile();
    let mut out = String::new();
    writeln!(
        out,
        "# Ablation: accuracy-tuning knobs on a conv2-shaped layer"
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} {:>10} {:>12} {:>12} {:>14}",
        "knob", "rms err", "storage x", "time factor", "acc damage"
    )
    .unwrap();

    // Pruning at three ratios: time factor from the calibrated profile,
    // storage as the dense-minus-zeros fraction, damage from the model.
    for ratio in [0.3f64, 0.5, 0.7] {
        let mut w = base.clone();
        prune_magnitude(&mut w, ratio).unwrap();
        let spec = PruneSpec::single("conv2", ratio);
        writeln!(
            out,
            "{:<26} {:>10.4} {:>12.2} {:>12.3} {:>13.1}%",
            format!("prune {:.0}%", ratio * 100.0),
            0.0, // surviving weights are exact
            1.0 / (1.0 - ratio),
            profile.batched_time_factor(&spec),
            profile.damage(&spec) * 100.0
        )
        .unwrap();
    }
    // Quantization: storage shrinks with bits; time unchanged without
    // hardware support (the paper's point); damage from the literature
    // model.
    for bits in [8u8, 4, 2] {
        let mut w = base.clone();
        let r = quantize_uniform(&mut w, bits).unwrap();
        writeln!(
            out,
            "{:<26} {:>10.4} {:>12.2} {:>12.3} {:>13.1}%",
            format!("quantize {bits}-bit"),
            r.rms_error,
            r.compression,
            1.0,
            quantization_damage(bits) * 100.0
        )
        .unwrap();
    }
    // Weight sharing: storage = codebook bits; time unchanged.
    for k in [256usize, 16, 4] {
        let mut w = base.clone();
        let r = share_weights(&mut w, k).unwrap();
        writeln!(
            out,
            "{:<26} {:>10.4} {:>12.2} {:>12.3} {:>13}",
            format!("share {k} clusters"),
            r.rms_error,
            32.0 / r.bits_per_weight as f64,
            1.0,
            "-"
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nreading: only pruning moves the *time* column — on the cloud, where time is\nmoney (Eq. 1), that is why the paper picks pruning over quantization/sharing."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_ablation_shows_pruning_unique_time_lever() {
        let t = ablation_knobs();
        // All quantize/share rows must print time factor 1.0.
        for line in t
            .lines()
            .filter(|l| l.starts_with("quantize") || l.starts_with("share"))
        {
            assert!(line.contains("1.000"), "{line}");
        }
        // Prune rows must have factors below 1.
        let prune_rows: Vec<&str> = t.lines().filter(|l| l.starts_with("prune")).collect();
        assert_eq!(prune_rows.len(), 3);
        for line in prune_rows {
            assert!(!line.contains(" 1.000 "), "{line}");
        }
    }
}
