//! Intra-network DAG-parallel ablation: the ready-queue node scheduler
//! (`CAP_CNN_DAG`, PR 7) off vs on, on the same branchy network,
//! weights, fusion plan, and kernel path — so the measured delta is
//! pure schedule overlap of independent branches, never a numeric
//! trade (DAG-parallel output is bit-identical to sequential by the
//! contract proved in `crates/cnn/tests/dag_parity.rs`).
//!
//! Batch 1 is the whole point: data-parallel chunking
//! ([`cap_cnn::ParallelEngine`]) cannot touch single-request latency,
//! while an inception module carries four independent branches the node
//! scheduler can overlap. The critical-path analyzer bounds the
//! exercise: no schedule can beat the longest dependency chain, so the
//! report shows floor, achieved, and the gap.

use super::kernels_exp::best_secs;
use cap_cnn::dag::{self, DagMode};
use cap_cnn::layer::{
    ConcatLayer, ConvLayer, InnerProductLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer,
};
use cap_cnn::network::{Network, NodeId, INPUT};
use cap_cnn::{CollectingTracer, CriticalPathReport, DagExecutor, ForwardArena, ProfileReport};
use cap_tensor::{init::xavier_uniform, kernels, Conv2dParams, Tensor4, TensorResult};
use std::fmt::Write;
use std::time::Duration;

/// Inception-module channel plan:
/// `(#1x1, #3x3reduce, #3x3, #5x5reduce, #5x5, #poolproj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// conv + relu helper mirroring the Googlenet builder.
fn conv(
    net: &mut Network,
    name: &str,
    p: Conv2dParams,
    inputs: &[NodeId],
    salt: u64,
) -> TensorResult<NodeId> {
    let w = xavier_uniform(p.out_channels, p.in_per_group() * p.kh * p.kw, salt);
    let c = net.add_layer(
        Box::new(ConvLayer::new(name, p, w, vec![0.0; p.out_channels])?),
        inputs,
    )?;
    net.add_layer(Box::new(ReluLayer::new(format!("{name}-relu"))), &[c])
}

/// One four-branch inception module (1x1 / 3x3 / 5x5 / pool-proj),
/// exactly the Googlenet shape at reduced channel counts.
fn inception(
    net: &mut Network,
    tag: &str,
    input: NodeId,
    in_c: usize,
    plan: InceptionPlan,
    salt: u64,
) -> TensorResult<NodeId> {
    let (n1, n3r, n3, n5r, n5, np) = plan;
    let b1 = conv(
        net,
        &format!("{tag}-1x1"),
        Conv2dParams::new(in_c, n1, 1, 0, 1),
        &[input],
        salt,
    )?;
    let b2r = conv(
        net,
        &format!("{tag}-3x3-reduce"),
        Conv2dParams::new(in_c, n3r, 1, 0, 1),
        &[input],
        salt + 1,
    )?;
    let b2 = conv(
        net,
        &format!("{tag}-3x3"),
        Conv2dParams::new(n3r, n3, 3, 1, 1),
        &[b2r],
        salt + 2,
    )?;
    let b3r = conv(
        net,
        &format!("{tag}-5x5-reduce"),
        Conv2dParams::new(in_c, n5r, 1, 0, 1),
        &[input],
        salt + 3,
    )?;
    let b3 = conv(
        net,
        &format!("{tag}-5x5"),
        Conv2dParams::new(n5r, n5, 5, 2, 1),
        &[b3r],
        salt + 4,
    )?;
    let bp = net.add_layer(
        Box::new(PoolLayer::new(
            format!("{tag}-pool"),
            PoolMode::Max,
            3,
            1,
            1,
        )),
        &[input],
    )?;
    let b4 = conv(
        net,
        &format!("{tag}-pool-proj"),
        Conv2dParams::new(in_c, np, 1, 0, 1),
        &[bp],
        salt + 5,
    )?;
    net.add_layer(
        Box::new(ConcatLayer::new(format!("{tag}-output"))),
        &[b1, b2, b3, b4],
    )
}

/// An inception-shaped network scaled to 3×32×32 input: a conv stem and
/// two four-branch inception modules (Googlenet's module topology at
/// reduced channel counts), global average pooling, and a 10-way
/// classifier — branchy enough that the plan width reaches 4, small
/// enough that the ablation completes in seconds.
pub fn mini_inception() -> Network {
    let mut net = Network::new("mini-inception", (3, 32, 32));
    let stem = conv(
        &mut net,
        "stem",
        Conv2dParams::new(3, 32, 3, 1, 1),
        &[INPUT],
        70_001,
    )
    .unwrap();
    // 32 -> 16+24+12+12 = 64 channels.
    let ia = inception(
        &mut net,
        "mini-3a",
        stem,
        32,
        (16, 16, 24, 8, 12, 12),
        70_100,
    )
    .unwrap();
    // 64 -> 24+32+16+16 = 88 channels.
    let ib = inception(
        &mut net,
        "mini-3b",
        ia,
        64,
        (24, 24, 32, 12, 16, 16),
        70_200,
    )
    .unwrap();
    let gap = net
        .add_layer(
            Box::new(PoolLayer::new("gap", PoolMode::Avg, 32, 0, 1)),
            &[ib],
        )
        .unwrap();
    let fc = net
        .add_layer(
            Box::new(
                InnerProductLayer::new("fc", xavier_uniform(10, 88, 70_300), vec![0.0; 10])
                    .unwrap(),
            ),
            &[gap],
        )
        .unwrap();
    net.add_layer(Box::new(SoftmaxLayer::new("prob")), &[fc])
        .unwrap();
    net
}

/// Batch-1 input for [`mini_inception`].
pub fn one_image() -> Tensor4 {
    Tensor4::from_fn(1, 3, 32, 32, |_, c, h, w| {
        ((c * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
    })
}

/// Run `f` with the DAG mode pinned, restoring the environment-driven
/// selection afterwards.
fn on_mode<T>(mode: DagMode, f: impl FnOnce() -> T) -> T {
    dag::force(Some(mode));
    let out = f();
    dag::force(None);
    out
}

/// Best batch-1 forward latency under `mode` (one warm-up pass first).
fn latency(mode: DagMode, net: &Network, img: &Tensor4) -> Duration {
    on_mode(mode, || {
        let mut arena = ForwardArena::new();
        net.forward_into(img, &mut arena).unwrap();
        Duration::from_secs_f64(best_secs(|| {
            net.forward_into(img, &mut arena).unwrap();
        }))
    })
}

/// Best batch-1 latency through an explicit [`DagExecutor`].
fn executor_latency(workers: usize, net: &Network, img: &Tensor4) -> Duration {
    let exec = DagExecutor::new(workers);
    let mut arena = ForwardArena::new();
    exec.run(net, img, &mut arena).unwrap();
    Duration::from_secs_f64(best_secs(|| {
        exec.run(net, img, &mut arena).unwrap();
    }))
}

/// The `dagpar` registry entry: DAG-scheduler-off vs -on ablation plus
/// the critical-path floor.
pub fn dagpar_ablation() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# Intra-network DAG-parallel ablation: CAP_CNN_DAG off vs on"
    )
    .unwrap();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    writeln!(
        out,
        "\nkernel path: {} (same on both arms); dag default: {}; host cores: {}",
        kernels::selected().name(),
        dag::selected().name(),
        host,
    )
    .unwrap();

    let net = mini_inception();
    let img = one_image();

    // The floor: per-node times from a sequential timed pass, longest
    // dependency chain through the DAG. Warm first and keep the fastest
    // of several passes — a cold pass inflates every node and would
    // overstate the floor.
    net.forward_timed(&img).unwrap();
    let rec = (0..5)
        .map(|_| net.forward_timed(&img).unwrap())
        .min_by_key(|r| r.total_time())
        .unwrap();
    let cp = CriticalPathReport::from_forward_record(&net, &rec).unwrap();
    writeln!(out, "\n## Critical path (mini-inception, batch 1)\n").unwrap();
    out.push_str(&cp.to_text());

    writeln!(out, "\n## Batch-1 latency (best of repeated runs)\n").unwrap();
    writeln!(
        out,
        "{:<26} {:>12} {:>9} {:>11}",
        "arm", "latency ms", "speedup", "% of floor"
    )
    .unwrap();
    let off = latency(DagMode::Off, &net, &img);
    let mut rows: Vec<(String, Duration)> = vec![
        ("sequential (dag=off)".into(), off),
        (
            "dag=on (auto-sized)".into(),
            latency(DagMode::On, &net, &img),
        ),
    ];
    for workers in [2, 4] {
        rows.push((
            format!("DagExecutor, {workers} workers"),
            executor_latency(workers, &net, &img),
        ));
    }
    for (label, t) in &rows {
        writeln!(
            out,
            "{label:<26} {:>12.3} {:>8.2}x {:>10.0}%",
            t.as_secs_f64() * 1e3,
            off.as_secs_f64() / t.as_secs_f64().max(1e-12),
            cp.efficiency(*t) * 100.0,
        )
        .unwrap();
    }

    // Profile with the floor attached: traced DAG-parallel passes feed
    // a ProfileReport, and the DagSummary rides along into text + JSON.
    let achieved = rows[1].1;
    let workers = host.min(4) as u64;
    let tracer = CollectingTracer::new();
    on_mode(DagMode::On, || {
        let mut arena = ForwardArena::new();
        for _ in 0..3 {
            net.forward_into_traced(&img, &mut arena, &tracer).unwrap();
        }
    });
    let report = ProfileReport::from_spans("mini-inception (dag=on)", &tracer.take_spans())
        .with_dag_summary(cp.summary(achieved, workers));
    writeln!(out, "\n## Profile with critical-path summary\n").unwrap();
    out.push_str(&report.to_text_table());
    writeln!(out, "\njson: {}", report.to_json()).unwrap();

    writeln!(
        out,
        "\nparity contract: DAG-parallel and sequential passes are bitwise \
         identical (crates/cnn/tests/dag_parity.rs); speedups are schedule \
         overlap only. Sequential chains (mini-Caffenet) have plan width 1, \
         so CAP_CNN_DAG=auto leaves them on the sequential path untouched."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_inception_is_branchy_and_classifies() {
        let net = mini_inception();
        assert_eq!(net.output_shape().unwrap(), (10, 1, 1));
        // Two four-branch modules: the shapes behind the ablation.
        let a = net.node_id("mini-3a-output").unwrap();
        assert_eq!(net.shape_of(a).unwrap(), (64, 32, 32));
        let b = net.node_id("mini-3b-output").unwrap();
        assert_eq!(net.shape_of(b).unwrap(), (88, 32, 32));
        let y = net.forward(&one_image()).unwrap();
        let s: f32 = y.image(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ablation_reports_floor_and_both_arms() {
        let out = dagpar_ablation();
        assert!(out.contains("off vs on"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        assert!(out.contains("sequential (dag=off)"), "{out}");
        assert!(out.contains("dag=on (auto-sized)"), "{out}");
        assert!(out.contains("DagExecutor, 2 workers"), "{out}");
        // The DagSummary made it into the profile's JSON export.
        assert!(out.contains("\"dag\":{"), "{out}");
        // Force must have been restored for later tests in this process.
        let env_off = std::env::var("CAP_CNN_DAG").as_deref() == Ok("off");
        assert_eq!(dag::selected().enabled(), !env_off);
    }
}
