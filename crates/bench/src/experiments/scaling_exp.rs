//! Measured strong scaling of the data-parallel inference engine, and
//! the efficiency-curve fit that feeds `cap-cloud`'s execution
//! simulator.
//!
//! The paper's Eq. 4 divides a workload ideally across GPUs; this
//! experiment replaces that assumption with a measurement: the same
//! batched workload runs under 1..N engine workers, the speedup series
//! is fitted to an Amdahl [`EfficiencyCurve`], and the fitted parallel
//! fraction is compared against the checked-in calibration constant the
//! simulator uses by default.

use cap_cloud::{EfficiencyCurve, CALIBRATED_PARALLEL_FRACTION};
use cap_cnn::layer::{
    ConvLayer, DropoutLayer, InnerProductLayer, LrnLayer, PoolLayer, PoolMode, ReluLayer,
    SoftmaxLayer,
};
use cap_cnn::network::Network;
use cap_cnn::strong_scaling;
use cap_tensor::{init::xavier_uniform, Conv2dParams, Tensor4};
use std::fmt::Write;

/// A Caffenet-shaped network scaled to 3×64×64 input: the same
/// five-conv (three grouped) + LRN + overlapping-pool + three-FC
/// topology as Table 1, with channel counts reduced so the experiment
/// completes in seconds on one core.
pub fn mini_caffenet() -> Network {
    let mut net = Network::new("mini-caffenet", (3, 64, 64));
    let conv = |p: Conv2dParams, name: &str, salt: u64| {
        let w = xavier_uniform(p.out_channels, p.in_per_group() * p.kh * p.kw, salt);
        Box::new(ConvLayer::new(name, p, w, vec![0.0; p.out_channels]).unwrap())
    };
    // conv1: 3 -> 32, 7x7 stride 2 -> 32x31x31.
    net.add_sequential(conv(Conv2dParams::new(3, 32, 7, 2, 2), "conv1", 1))
        .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu1")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool1", PoolMode::Max, 3, 0, 2)))
        .unwrap();
    net.add_sequential(Box::new(LrnLayer::alexnet("norm1")))
        .unwrap();
    // conv2: grouped x2 like Caffenet's conv2 -> 64x15x15.
    net.add_sequential(conv(Conv2dParams::grouped(32, 64, 5, 2, 1, 2), "conv2", 2))
        .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu2")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool2", PoolMode::Max, 3, 0, 2)))
        .unwrap();
    net.add_sequential(Box::new(LrnLayer::alexnet("norm2")))
        .unwrap();
    // conv3-5 mirror the 3x3 stack, conv4/5 grouped.
    net.add_sequential(conv(Conv2dParams::new(64, 96, 3, 1, 1), "conv3", 3))
        .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu3")))
        .unwrap();
    net.add_sequential(conv(Conv2dParams::grouped(96, 96, 3, 1, 1, 2), "conv4", 4))
        .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu4")))
        .unwrap();
    net.add_sequential(conv(Conv2dParams::grouped(96, 64, 3, 1, 1, 2), "conv5", 5))
        .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu5")))
        .unwrap();
    net.add_sequential(Box::new(PoolLayer::new("pool5", PoolMode::Max, 3, 0, 2)))
        .unwrap();
    // fc6-8 on the 64*3*3 flattened map.
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc6", xavier_uniform(256, 64 * 9, 6), vec![0.01; 256]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu6")))
        .unwrap();
    net.add_sequential(Box::new(DropoutLayer::new("drop6", 0.5)))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc7", xavier_uniform(256, 256, 7), vec![0.01; 256]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("relu7")))
        .unwrap();
    net.add_sequential(Box::new(DropoutLayer::new("drop7", 0.5)))
        .unwrap();
    net.add_sequential(Box::new(
        InnerProductLayer::new("fc8", xavier_uniform(100, 256, 8), vec![0.0; 100]).unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();
    net
}

/// The experiment's fixed workload: 32 images at batch 8 (four chunks).
pub fn workload() -> Tensor4 {
    Tensor4::from_fn(32, 3, 64, 64, |n, c, h, w| {
        ((n * 31 + c * 17 + h * 3 + w) % 23) as f32 / 11.0 - 1.0
    })
}

/// Strong-scaling profile of [`cap_cnn::ParallelEngine`] on the
/// mini-Caffenet batch-8 workload, with the Amdahl fit.
pub fn scalingm() -> String {
    // Timed metrics on, registry reset before any (warm-up) pass runs:
    // the latency quantiles printed below then cover exactly this
    // experiment's forward passes (see `Gauge::record_max` on ordering).
    let _timing = cap_obs::TimingGuard::enable();
    cap_obs::metrics().reset();

    let net = mini_caffenet();
    let imgs = workload();
    let counts = [1usize, 2, 4];
    let series = strong_scaling(&net, &imgs, 8, &counts).expect("scaling run");
    let base = series[0].1;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    writeln!(
        out,
        "# Strong scaling (measured): ParallelEngine on mini-Caffenet, 32 images, batch 8"
    )
    .unwrap();
    writeln!(out, "host parallelism: {cores} core(s)").unwrap();
    writeln!(
        out,
        "{:>8} {:>12} {:>9} {:>11}",
        "workers", "images/s", "speedup", "efficiency"
    )
    .unwrap();
    for &(w, rate) in &series {
        let s = rate / base.max(1e-12);
        writeln!(
            out,
            "{:>8} {:>12.1} {:>8.2}x {:>10.0}%",
            w,
            rate,
            s,
            100.0 * s / w as f64
        )
        .unwrap();
    }

    let profile: Vec<(u32, f64)> = series.iter().map(|&(w, r)| (w as u32, r)).collect();
    match EfficiencyCurve::fit(&profile) {
        Some(curve) => {
            writeln!(
                out,
                "\nAmdahl fit: parallel fraction {:.3} (simulator default constant: {:.3})",
                curve.parallel_fraction(),
                CALIBRATED_PARALLEL_FRACTION
            )
            .unwrap();
            writeln!(
                out,
                "fitted speedup at 8 GPUs: {:.2}x, at 16 GPUs: {:.2}x (ideal: 8x / 16x)",
                curve.speedup(8),
                curve.speedup(16)
            )
            .unwrap();
        }
        None => writeln!(out, "\nAmdahl fit: unavailable (no multi-worker point)").unwrap(),
    }
    if cores < 2 {
        writeln!(
            out,
            "note: single-core host — measured speedup reflects scheduling overhead, \
             not hardware parallelism; the checked-in calibration constant was \
             fitted on a multi-core host"
        )
        .unwrap();
    }

    // Tail view of the same runs: per-chunk forward latency quantiles
    // from the registry's log-linear histogram (<= 1/32 relative error).
    let lat = cap_obs::metrics().snapshot().forward_latency_us;
    match lat.percentiles() {
        Some((p50, p90, p95, p99)) => writeln!(
            out,
            "\nchunk forward latency across all arms: n {} mean {:.0} us, \
             p50 {p50} p90 {p90} p95 {p95} p99 {p99} us",
            lat.count,
            lat.mean()
        )
        .unwrap(),
        None => writeln!(out, "\nchunk forward latency: no timed passes recorded").unwrap(),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_cnn::{run_batched, ParallelEngine};

    #[test]
    fn mini_caffenet_shapes_work_end_to_end() {
        let net = mini_caffenet();
        let x = Tensor4::from_fn(2, 3, 64, 64, |_, c, h, w| ((c + h + w) % 5) as f32 / 5.0);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), (2, 100, 1, 1));
    }

    #[test]
    fn scalingm_reports_fit_and_all_counts() {
        let out = scalingm();
        assert!(out.contains("workers"), "{out}");
        assert!(out.contains("Amdahl fit"), "{out}");
        // Its own timed passes guarantee non-empty latency quantiles.
        assert!(out.contains("p50 ") && out.contains("p99 "), "{out}");
    }

    /// The headline acceptance check: with real hardware parallelism
    /// available, two engine workers beat the sequential driver on the
    /// Caffenet-shaped batch-8 workload. On a single-core host the
    /// premise is void, so the comparison is skipped (and said so).
    #[test]
    fn two_workers_beat_sequential_when_cores_allow() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            eprintln!("skipping speedup assertion: single-core host");
            return;
        }
        let net = mini_caffenet();
        let imgs = workload();
        let _ = run_batched(&net, &imgs, 8).unwrap(); // warm weights
        let mut seq_best = 0.0f64;
        for _ in 0..3 {
            let (_, r) = run_batched(&net, &imgs, 8).unwrap();
            seq_best = seq_best.max(r.images_per_s);
        }
        let engine = ParallelEngine::new(2);
        let _ = engine.run_batched(&net, &imgs, 8).unwrap(); // warm arenas
        let mut par_best = 0.0f64;
        for _ in 0..3 {
            let (_, r) = engine.run_batched(&net, &imgs, 8).unwrap();
            par_best = par_best.max(r.throughput.images_per_s);
        }
        assert!(
            par_best > seq_best,
            "2 workers {par_best:.1} img/s <= sequential {seq_best:.1} img/s"
        );
    }
}
