//! Figures 9 and 10: the configuration space and its Pareto frontiers.

use cap_cloud::{catalog, enumerate_configs, InstanceType};
use cap_core::{
    caffenet_version_grid, evaluate_grid, feasible_by_budget, feasible_by_deadline,
    frontier_indices, savings_at_best_accuracy, AccuracyMetric, EvaluatedConfig, Objective,
};
use cap_pruning::caffenet_profile;
use std::fmt::Write;

/// Batch settings forming the configuration space's parallel-inference
/// dimension: one saturated, two below saturation.
const BATCH_GRID: [u32; 3] = [48, 160, 512];

fn space() -> Vec<EvaluatedConfig> {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    evaluate_grid(&versions, &configs, 1_000_000, &BATCH_GRID)
}

fn frontier_block(
    out: &mut String,
    feasible: &[EvaluatedConfig],
    metric: AccuracyMetric,
    objective: Objective,
) {
    let front = frontier_indices(feasible, metric, objective);
    writeln!(out, "\n{metric:?} Pareto frontier: {} points", front.len()).unwrap();
    for &i in &front {
        let e = &feasible[i];
        match objective {
            Objective::Time => writeln!(
                out,
                "  acc {:>5.1}%  {:>6.2} h  {} on {} @b{}",
                e.accuracy(metric) * 100.0,
                e.time_s / 3600.0,
                e.version_label,
                e.config_label,
                e.batch
            )
            .unwrap(),
            Objective::Cost => writeln!(
                out,
                "  acc {:>5.1}%  ${:>7.2}  {} on {} @b{}",
                e.accuracy(metric) * 100.0,
                e.cost_usd,
                e.version_label,
                e.config_label,
                e.batch
            )
            .unwrap(),
        }
    }
}

/// Figure 9: feasible configurations under a 10-hour deadline, with
/// time-accuracy Pareto frontiers for Top-1 and Top-5.
pub fn fig9() -> String {
    let evals = space();
    let feasible = feasible_by_deadline(&evals, 10.0 * 3600.0);
    let mut out = String::new();
    writeln!(
        out,
        "# Figure 9: impact of accuracy on cloud execution time"
    )
    .unwrap();
    writeln!(
        out,
        "space: 60 versions x 63 p2 configs x {} batch settings = {} candidates",
        BATCH_GRID.len(),
        evals.len()
    )
    .unwrap();
    writeln!(
        out,
        "feasible under 10 h deadline: {} (paper: 7654 of its larger space)",
        feasible.len()
    )
    .unwrap();
    frontier_block(&mut out, &feasible, AccuracyMetric::Top1, Objective::Time);
    frontier_block(&mut out, &feasible, AccuracyMetric::Top5, Objective::Time);
    if let Some((best, worst, saving)) =
        savings_at_best_accuracy(&feasible, AccuracyMetric::Top1, Objective::Time, 1e-9)
    {
        writeln!(
            out,
            "\nat the highest Pareto accuracy ({:.1}% top1): {:.2} h vs worst {:.2} h -> {:.0}% time saved (paper: 50%)",
            best.top1 * 100.0,
            best.time_s / 3600.0,
            worst.time_s / 3600.0,
            saving * 100.0
        )
        .unwrap();
    }
    out
}

/// Figure 10: feasible configurations under a cost budget, with
/// cost-accuracy Pareto frontiers.
///
/// Scale note: our calibrated simulator executes 1 M Caffenet images in
/// 6.3 GPU-hours on a K80 (consistent with the paper's own Figure 6
/// anchor of 19 min per 50 000 images), which prices the whole space far
/// below the paper's $300 budget — the paper's Figures 9/10 cost scale
/// is not self-consistent with its Figure 6 timing. We therefore report
/// the $300 filter (everything fits) *and* a proportionally scaled $4
/// budget that actually binds, preserving the figure's character.
pub fn fig10() -> String {
    let evals = space();
    let mut out = String::new();
    writeln!(out, "# Figure 10: impact of accuracy on cloud cost").unwrap();
    let feasible300 = feasible_by_budget(&evals, 300.0);
    writeln!(
        out,
        "feasible under $300: {} of {} (paper: 1042 of its larger space)",
        feasible300.len(),
        evals.len()
    )
    .unwrap();
    let binding = 4.0;
    let feasible = feasible_by_budget(&evals, binding);
    writeln!(
        out,
        "feasible under scaled ${binding} budget (binding at our cost scale): {} of {}",
        feasible.len(),
        evals.len()
    )
    .unwrap();
    frontier_block(&mut out, &feasible, AccuracyMetric::Top1, Objective::Cost);
    frontier_block(&mut out, &feasible, AccuracyMetric::Top5, Objective::Cost);
    if let Some((best, worst, saving)) =
        savings_at_best_accuracy(&feasible300, AccuracyMetric::Top1, Objective::Cost, 1e-9)
    {
        writeln!(
            out,
            "\nat the highest Pareto accuracy ({:.1}% top1): ${:.2} vs worst ${:.2} -> {:.0}% cost saved (paper: 55%)",
            best.top1 * 100.0,
            best.cost_usd,
            worst.cost_usd,
            saving * 100.0
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_frontier_exists_and_deadline_binds() {
        let t = fig9();
        assert!(t.contains("Pareto frontier"));
        assert!(t.contains("time saved"));
    }

    #[test]
    fn fig10_reports_both_budgets() {
        let t = fig10();
        assert!(t.contains("$300"));
        assert!(t.contains("cost saved"));
    }
}
