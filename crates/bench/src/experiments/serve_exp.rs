//! Online serving characterization: three tenants — the demo CNN dense
//! and pruned to 60 % / 90 % — co-located behind the `cap-serve`
//! dynamic-batching router, driven by seeded open-loop traces at
//! increasing load. The table reports, per load point and tenant, the
//! admitted/shed split, the formed batch occupancy, and the p50/p99
//! latency against the SLO; each aggregate row prices the achieved
//! throughput as cost per 1 000 inferences on two catalog instances.
//!
//! Everything scheduling-related runs on the router's virtual clock
//! (see `cap-serve`), so this table is bit-identical on every machine
//! and every rerun — the final line replays one load point and checks
//! that. Real forward passes execute for every dispatched batch; their
//! wall time is environment noise and deliberately *not* shown here.

use cap_cloud::by_name;
use cap_obs::span::{CollectingTracer, NoopTracer, Tracer};
use cap_obs::SpanRecord;
use cap_serve::{fleet, generate_trace, ArrivalPattern, Router, RouterConfig, ServeReport};
use std::fmt::Write;

/// The fixed trace seed. Changing it changes every number in the table;
/// the golden-trace test in `crates/serve` pins the generator itself.
const SEED: u64 = 4242;

/// Virtual seconds of load per point — long enough for thousands of
/// requests, short enough that the real forward passes finish in
/// seconds on one core.
const DURATION_S: f64 = 0.5;

fn fleet_tenants() -> Vec<(cap_serve::TenantConfig, cap_cnn::Network)> {
    vec![
        fleet::pruned_tenant("dense", 1, 0.0),
        fleet::pruned_tenant("pruned-60", 2, 0.6),
        fleet::pruned_tenant("pruned-90", 3, 0.9),
    ]
}

fn patterns(load: f64) -> Vec<ArrivalPattern> {
    vec![
        ArrivalPattern::Poisson {
            rate_per_s: 800.0 * load,
        },
        ArrivalPattern::Diurnal {
            base_per_s: 200.0 * load,
            peak_per_s: 1_400.0 * load,
            period_s: 0.25,
        },
        ArrivalPattern::Burst {
            base_per_s: 400.0 * load,
            burst_per_s: 4_000.0 * load,
            burst_every_s: 0.25,
            burst_len_s: 0.05,
        },
    ]
}

fn run_point_traced<T: Tracer>(load: f64, tracer: &T) -> ServeReport {
    let mut router = Router::new(
        RouterConfig {
            workers: 2,
            collect_outputs: false,
            ..RouterConfig::default()
        },
        fleet_tenants(),
    );
    let trace = generate_trace(SEED, &patterns(load), DURATION_S);
    let pool = fleet::demo_images(8);
    router
        .serve_trace_traced(&trace, &[pool.clone(), pool.clone(), pool], tracer)
        .expect("serve point")
}

fn run_point(load: f64) -> ServeReport {
    run_point_traced(load, &NoopTracer)
}

/// The `serve` experiment: throughput vs latency vs cost under
/// multi-tenant dynamic batching.
pub fn serve() -> String {
    serve_with_trace().0
}

/// [`serve`] plus the request-lifecycle span list from the replay-check
/// run (load ×2) — the span source `repro --exp serve --trace-out`
/// renders into a Perfetto timeline. The spans are virtual-clock
/// placed, so the trace file is bit-identical run to run.
pub fn serve_with_trace() -> (String, Vec<SpanRecord>) {
    let mut out = String::new();
    writeln!(
        out,
        "Online serving: 3 tenants (dense / 60% / 90% pruned demo CNN), \
         2 workers, seed {SEED}, {DURATION_S} virtual s per point"
    )
    .unwrap();
    writeln!(
        out,
        "patterns: dense=poisson, pruned-60=diurnal, pruned-90=burst; \
         SLO 50 ms, queue cap 64, batch deadline 5 ms, max batch 16"
    )
    .unwrap();

    let p2 = by_name("p2.xlarge").expect("catalog");
    let g3 = by_name("g3.4xlarge").expect("catalog");

    for &load in &[0.5, 1.0, 2.0, 3.0] {
        let report = run_point(load);
        writeln!(out, "\n## load x{load}").unwrap();
        writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>6} {:>8} {:>6} {:>9} {:>9} {:>8} {:>4}",
            "tenant",
            "offered",
            "admit",
            "shed",
            "batches",
            "mean b",
            "p50 ms",
            "p99 ms",
            "viol",
            "cap"
        )
        .unwrap();
        for t in &report.tenants {
            writeln!(
                out,
                "{:<10} {:>8} {:>8} {:>6} {:>8} {:>6.2} {:>9.2} {:>9.2} {:>8} {:>4}",
                t.name,
                t.offered,
                t.admitted,
                t.shed,
                t.batches,
                t.mean_batch,
                t.p50_us as f64 / 1e3,
                t.p99_us as f64 / 1e3,
                t.slo_violations,
                t.final_batch_cap,
            )
            .unwrap();
        }
        for t in &report.tenants {
            writeln!(
                out,
                "slo {:<10} error budget consumed {:>7.3} (target 99%), \
                 burn alerts: {} fast, {} slow",
                t.name, t.budget_consumed, t.fast_burn_alerts, t.slow_burn_alerts,
            )
            .unwrap();
        }
        writeln!(
            out,
            "aggregate: {:.0} inf/s over {:.3} virtual s ({} shed of {}); \
             cost/1k: ${:.6} on {} (${}/h), ${:.6} on {} (${}/h)",
            report.throughput_per_s,
            report.makespan_us as f64 / 1e6,
            report.shed,
            report.offered,
            report.cost_per_1k_usd(p2.price_per_hour),
            p2.name,
            p2.price_per_hour,
            report.cost_per_1k_usd(g3.price_per_hour),
            g3.name,
            g3.price_per_hour,
        )
        .unwrap();
    }

    // Determinism spot-check: replay one point and compare the counts
    // the acceptance contract names (admitted / shed / batches). The
    // first replay also collects the lifecycle spans for --trace-out
    // (tracing must not perturb scheduling — pinned by
    // `crates/serve/tests/determinism.rs`).
    let tracer = CollectingTracer::new();
    let a = run_point_traced(2.0, &tracer);
    let b = run_point(2.0);
    let identical = a.admitted == b.admitted
        && a.shed == b.shed
        && a.batches == b.batches
        && a.makespan_us == b.makespan_us;
    writeln!(
        out,
        "\nreplay check (load x2): admitted/shed/batch counts identical = {identical}"
    )
    .unwrap();
    assert!(identical, "virtual-clock serving must replay exactly");
    (out, tracer.take_spans())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI smoke: one low-load point end to end, plus the exact
    /// replay property on the full report.
    #[test]
    fn serve_point_replays_exactly() {
        let a = run_point(0.5);
        let b = run_point(0.5);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.makespan_us, b.makespan_us);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.p50_us, tb.p50_us);
            assert_eq!(ta.p99_us, tb.p99_us);
        }
    }

    #[test]
    fn higher_load_never_lowers_offered_or_raises_capacity() {
        let lo = run_point(0.5);
        let hi = run_point(3.0);
        assert!(hi.offered > lo.offered);
        // At 3x the fleet is past capacity: shedding must engage.
        assert!(hi.shed > 0, "3x load should overload the two workers");
        assert_eq!(
            lo.shed, 0,
            "0.5x load should be comfortably inside capacity"
        );
    }
}
