//! Extension experiments beyond the paper's evaluation: the Googlenet
//! configuration space (the paper restricts Figures 9–12 to Caffenet
//! "for simplicity"), what-if consumer queries, and the joint
//! three-objective frontier.

use cap_cloud::{catalog, enumerate_configs, InstanceType};
use cap_core::explorer::tri_frontier_indices;
use cap_core::{
    evaluate_grid, feasible_by_deadline, frontier_indices, googlenet_version_grid,
    max_accuracy_within, min_cost_for_accuracy, min_time_for_accuracy, min_time_spec,
    AccuracyMetric, EvaluatedConfig, Floor, Objective,
};
use cap_pruning::{caffenet_profile, googlenet_profile};
use std::fmt::Write;

fn googlenet_space() -> Vec<EvaluatedConfig> {
    let profile = googlenet_profile();
    let versions = googlenet_version_grid(&profile);
    let g3: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "g3")
        .collect();
    let configs = enumerate_configs(&g3, 3);
    evaluate_grid(&versions, &configs, 1_000_000, &[48, 160, 512])
}

/// Figure 9 analogue for Googlenet on the g3 family.
pub fn fig9g() -> String {
    let evals = googlenet_space();
    let feasible = feasible_by_deadline(&evals, 10.0 * 3600.0);
    let mut out = String::new();
    writeln!(
        out,
        "# Extension: Googlenet time-accuracy space (g3 family)"
    )
    .unwrap();
    writeln!(
        out,
        "space: 72 versions x 63 g3 configs x 3 batch settings = {} candidates; {} feasible under 10 h",
        evals.len(),
        feasible.len()
    )
    .unwrap();
    let front = frontier_indices(&feasible, AccuracyMetric::Top5, Objective::Time);
    writeln!(
        out,
        "\nTop5 time-accuracy Pareto frontier ({} points, top 10):",
        front.len()
    )
    .unwrap();
    for &i in front.iter().take(10) {
        let e = &feasible[i];
        writeln!(
            out,
            "  acc {:>5.1}%  {:>6.2} h  {} on {} @b{}",
            e.top5 * 100.0,
            e.time_s / 3600.0,
            e.version_label,
            e.config_label,
            e.batch
        )
        .unwrap();
    }
    // Joint three-objective frontier (accuracy, time, cost at once).
    let tri = tri_frontier_indices(&feasible, AccuracyMetric::Top5);
    writeln!(
        out,
        "\njoint (accuracy, time, cost) frontier: {} points — the paper's two 2-D\nfrontiers overlap because time and cost are proportional within one family;\nmixing families/batches adds genuinely tri-objective trade-offs.",
        tri.len()
    )
    .unwrap();
    out
}

/// What-if consumer queries over the Caffenet space.
pub fn whatif() -> String {
    let profile = caffenet_profile();
    let versions = cap_core::caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    let evals = evaluate_grid(&versions, &configs, 1_000_000, &[48, 160, 512]);

    let mut out = String::new();
    writeln!(
        out,
        "# Extension: what-if queries (1M Caffenet inferences, p2 family)"
    )
    .unwrap();
    for floor in [0.55, 0.50, 0.45] {
        if let Some(a) = min_cost_for_accuracy(&evals, AccuracyMetric::Top1, floor) {
            writeln!(
                out,
                "cheapest way to top1 >= {:.0}%: ${:.2} in {:.2} h (acc {:.1}%)",
                floor * 100.0,
                a.cost_usd,
                a.time_s / 3600.0,
                a.accuracy * 100.0
            )
            .unwrap();
        }
    }
    for floor in [0.55, 0.45] {
        if let Some(a) = min_time_for_accuracy(&evals, AccuracyMetric::Top1, floor) {
            writeln!(
                out,
                "fastest way to top1 >= {:.0}%: {:.2} h at ${:.2}",
                floor * 100.0,
                a.time_s / 3600.0,
                a.cost_usd
            )
            .unwrap();
        }
    }
    for (h, budget) in [(2.0, 10.0), (1.0, 4.0), (0.25, 2.0)] {
        match max_accuracy_within(&evals, AccuracyMetric::Top1, h * 3600.0, budget) {
            Some(a) => writeln!(
                out,
                "best accuracy within {h} h and ${budget}: {:.1}% (${:.2}, {:.2} h)",
                a.accuracy * 100.0,
                a.cost_usd,
                a.time_s / 3600.0
            )
            .unwrap(),
            None => writeln!(out, "best accuracy within {h} h and ${budget}: infeasible").unwrap(),
        }
    }
    // Degree-of-pruning search.
    for floor in [0.75, 0.65] {
        if let Some(r) = min_time_spec(&profile, Floor::Top5(floor)) {
            writeln!(
                out,
                "min-time spec for top5 >= {:.0}%: {} (time factor {:.3})",
                floor * 100.0,
                r.spec.label(),
                r.time_factor
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_report_contains_all_query_kinds() {
        let t = whatif();
        assert!(t.contains("cheapest way"));
        assert!(t.contains("fastest way"));
        assert!(t.contains("best accuracy within"));
        assert!(t.contains("min-time spec"));
    }
}
