//! Algorithm 1 evaluation and the paper's headline numbers.

use cap_cloud::{catalog, enumerate_configs, InstanceType};
use cap_core::{
    allocate, caffenet_version_grid, evaluate_grid, exhaustive_search, feasible_by_budget,
    feasible_by_deadline, savings_at_best_accuracy, AccuracyMetric, AllocationRequest, Objective,
};
use cap_pruning::{caffenet_profile, PruneSpec};
use std::fmt::Write;
use std::time::Instant;

/// Algorithm 1 (TAR/CAR greedy) vs exhaustive subset search: same best
/// accuracy, polynomial vs exponential evaluations, measured wall-clock.
pub fn alg1() -> String {
    let versions = caffenet_version_grid(&caffenet_profile());
    let cat = catalog();
    let mut out = String::new();
    writeln!(out, "# Algorithm 1: TAR/CAR greedy vs exhaustive search").unwrap();
    writeln!(
        out,
        "{:>4} {:>12} {:>14} {:>11} {:>11} {:>9} {:>9}",
        "|G|", "greedy evals", "exhaust evals", "greedy ms", "exhaust ms", "grdy acc", "exh acc"
    )
    .unwrap();
    for g_size in [4usize, 6, 8, 10, 12, 14] {
        let pool: Vec<InstanceType> = (0..g_size)
            .map(|i| {
                if i % 2 == 0 {
                    cat[0].clone()
                } else {
                    cat[3].clone()
                }
            })
            .collect();
        let deadline = 4.0 * 3600.0;
        let budget = 60.0;
        let t0 = Instant::now();
        let greedy = allocate(
            &versions,
            &pool,
            &AllocationRequest {
                w: 200_000,
                batch: 512,
                deadline_s: deadline,
                budget_usd: budget,
                metric: AccuracyMetric::Top1,
            },
        );
        let greedy_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let exhaust = exhaustive_search(
            &versions,
            &pool,
            200_000,
            512,
            deadline,
            budget,
            AccuracyMetric::Top1,
        );
        let exhaust_ms = t1.elapsed().as_secs_f64() * 1000.0;
        match (greedy, exhaust) {
            (Some(g), Some(e)) => writeln!(
                out,
                "{:>4} {:>12} {:>14} {:>11.1} {:>11.1} {:>8.1}% {:>8.1}%",
                g_size,
                g.evaluations,
                e.evaluations,
                greedy_ms,
                exhaust_ms,
                versions[g.version_idx].top1 * 100.0,
                e.accuracy * 100.0
            )
            .unwrap(),
            _ => writeln!(out, "{g_size:>4} infeasible").unwrap(),
        }
    }
    writeln!(
        out,
        "\nexhaustive work doubles per added resource (O(2^|G|)); greedy is O(|G| log |G|) per version"
    )
    .unwrap();
    out
}

/// Headline summary: every quantitative claim of the abstract, measured
/// against this reproduction.
pub fn headline() -> String {
    let profile = caffenet_profile();
    let mut out = String::new();
    writeln!(out, "# Headline claims vs this reproduction").unwrap();

    // Claim 1: sweet-spot combination — time/accuracy for conv1-2 and all-conv.
    let conv12 = PruneSpec::single("conv1", 0.3).with("conv2", 0.5);
    let all = profile.all_knees_spec();
    let minutes = |s: &PruneSpec| profile.batched_s_per_image(s) * 50_000.0 / 60.0;
    let (_, t5_12) = profile.accuracy(&conv12);
    let (_, t5_all) = profile.accuracy(&all);
    writeln!(
        out,
        "\n[1] multi-layer sweet spots (paper: halve time/cost, 1/10 accuracy drop)"
    )
    .unwrap();
    writeln!(
        out,
        "    conv1-2 : {:.1} min (-{:.0}%), top5 {:.1}% (-{:.0}% rel)",
        minutes(&conv12),
        (1.0 - minutes(&conv12) / 19.0) * 100.0,
        t5_12 * 100.0,
        (1.0 - t5_12 / 0.80) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "    all-conv: {:.1} min (-{:.0}%), top5 {:.1}% (-{:.0}% rel)",
        minutes(&all),
        (1.0 - minutes(&all) / 19.0) * 100.0,
        t5_all * 100.0,
        (1.0 - t5_all / 0.80) * 100.0
    )
    .unwrap();

    // Claim 2: Pareto savings at highest accuracy.
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    let evals = evaluate_grid(&versions, &configs, 1_000_000, &[48, 160, 512]);
    let feas_t = feasible_by_deadline(&evals, 10.0 * 3600.0);
    let feas_c = feasible_by_budget(&evals, 300.0);
    if let Some((_, _, ts)) =
        savings_at_best_accuracy(&feas_t, AccuracyMetric::Top1, Objective::Time, 1e-9)
    {
        writeln!(
            out,
            "\n[2] Pareto time saving at highest accuracy: {:.0}% (paper: 50%)",
            ts * 100.0
        )
        .unwrap();
    }
    if let Some((_, _, cs)) =
        savings_at_best_accuracy(&feas_c, AccuracyMetric::Top1, Objective::Cost, 1e-9)
    {
        writeln!(
            out,
            "[3] Pareto cost saving at highest accuracy: {:.0}% (paper: 55%)",
            cs * 100.0
        )
        .unwrap();
    }

    // Claim 4: complexity.
    writeln!(
        out,
        "\n[4] configuration determination: greedy O(|G| log |G|) vs exhaustive O(2^|G|) — see --exp alg1"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_report_shows_agreement() {
        let t = alg1();
        // Greedy and exhaustive accuracies agree on every feasible row.
        for line in t
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
        {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() >= 7 {
                assert_eq!(cols[5], cols[6], "accuracy mismatch in: {line}");
            }
        }
    }

    #[test]
    fn headline_mentions_all_claims() {
        let t = headline();
        assert!(t.contains("[1]"));
        assert!(t.contains("[2]"));
        assert!(t.contains("[3]"));
        assert!(t.contains("[4]"));
    }
}
