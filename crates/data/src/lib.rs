//! # cap-data
//!
//! Synthetic labeled image data — the stand-in for the paper's ImageNet
//! subsets (1.2 M training images, 50 000 held-out inference images).
//!
//! Only two properties of the dataset matter to the paper's models: the
//! image *count* `W` driving the time/cost equations, and the existence
//! of class structure a CNN can actually learn so accuracy is
//! measurable. [`SyntheticImageNet`] provides both: deterministic,
//! procedurally generated class-patterned images at any resolution and
//! class count.

#![warn(missing_docs)]

pub mod dataset;
pub mod workload;

pub use dataset::SyntheticImageNet;
pub use workload::Workload;
