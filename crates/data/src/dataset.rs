//! Deterministic procedural image dataset.

use cap_tensor::Tensor4;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A synthetic ImageNet stand-in: images are class-patterned oriented
/// gratings plus per-image noise, generated deterministically from
/// `(seed, index)` — image `i` is identical across runs and machines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticImageNet {
    /// Number of classes (ImageNet: 1000).
    pub classes: usize,
    /// Per-image shape `(c, h, w)`.
    pub image_shape: (usize, usize, usize),
    /// Master seed.
    pub seed: u64,
    /// Noise amplitude relative to the signal (0 = clean gratings).
    pub noise: f32,
}

impl SyntheticImageNet {
    /// Standard configuration used by the TinyNet experiments:
    /// 8 classes of 3×16×16 images with moderate noise.
    pub fn tiny(seed: u64) -> Self {
        Self {
            classes: 8,
            image_shape: (3, 16, 16),
            seed,
            noise: 0.3,
        }
    }

    /// Label of image `index` (stratified: `index % classes`).
    pub fn label(&self, index: u64) -> usize {
        (index % self.classes as u64) as usize
    }

    /// Generate image `index` into a flat `c*h*w` vector (NCHW order).
    pub fn image(&self, index: u64) -> Vec<f32> {
        let (c, h, w) = self.image_shape;
        let k = self.label(index);
        // Class-dependent grating: orientation and frequency per class.
        let angle = std::f32::consts::PI * (k as f32) / (self.classes as f32);
        let freq = 1.0 + (k % 4) as f32 * 0.5;
        let (dx, dy) = (angle.cos() * freq, angle.sin() * freq);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        let mut out = Vec::with_capacity(c * h * w);
        for ci in 0..c {
            let chan_phase = ci as f32 * 0.7;
            for y in 0..h {
                for x in 0..w {
                    let signal = ((x as f32 * dx + y as f32 * dy) * 0.8 + chan_phase).sin();
                    let noise: f32 = rng.gen_range(-1.0..1.0) * self.noise;
                    out.push(signal + noise);
                }
            }
        }
        out
    }

    /// Generate a labelled batch covering image indices
    /// `start .. start + n`.
    pub fn batch(&self, start: u64, n: usize) -> (Tensor4, Vec<usize>) {
        let (c, h, w) = self.image_shape;
        let mut data = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n as u64 {
            data.extend(self.image(start + i));
            labels.push(self.label(start + i));
        }
        let t =
            Tensor4::from_vec(n, c, h, w, data).expect("batch data length matches by construction");
        (t, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let d = SyntheticImageNet::tiny(42);
        assert_eq!(d.image(7), d.image(7));
        assert_ne!(d.image(7), d.image(8));
        let d2 = SyntheticImageNet::tiny(43);
        assert_ne!(d.image(7), d2.image(7));
    }

    #[test]
    fn labels_stratified() {
        let d = SyntheticImageNet::tiny(1);
        let counts = (0..80u64).fold(vec![0usize; 8], |mut acc, i| {
            acc[d.label(i)] += 1;
            acc
        });
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn batch_shapes_and_labels() {
        let d = SyntheticImageNet::tiny(5);
        let (x, labels) = d.batch(16, 12);
        assert_eq!(x.shape(), (12, 3, 16, 16));
        assert_eq!(labels.len(), 12);
        assert_eq!(labels[0], d.label(16));
        // Batch rows equal individually generated images.
        assert_eq!(x.image(3), d.image(19).as_slice());
    }

    #[test]
    fn same_class_images_correlate_more_than_cross_class() {
        let d = SyntheticImageNet::tiny(9);
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        // Images 0 and 8 share class 0; image 4 is class 4.
        let a = d.image(0);
        let same = d.image(8);
        let diff = d.image(4);
        assert!(corr(&a, &same) > corr(&a, &diff));
    }

    #[test]
    fn values_bounded() {
        let d = SyntheticImageNet::tiny(3);
        for v in d.image(123) {
            assert!(v.abs() <= 1.0 + d.noise);
        }
    }
}
