//! Inference workload definitions (paper symbols `W`, `n`, `b`).

use serde::{Deserialize, Serialize};

/// An inference workload: `W` images processed `batch_size` at a time.
///
/// ```
/// use cap_data::Workload;
///
/// // The paper's Figure 6 measurement workload: 50 000 images at the
/// // GPU saturation batch size. The last batch may be ragged — Eq. 3
/// // rounds the batch count up.
/// let w = Workload::paper_inference();
/// assert_eq!((w.total_images, w.batch_size), (50_000, 512));
/// assert_eq!(w.batches(), 98); // ⌈50000 / 512⌉
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Total images to infer (`W`).
    pub total_images: u64,
    /// Parallel inferences per batch (`b`).
    pub batch_size: u32,
}

impl Workload {
    /// The paper's measurement workload: 50 000 held-out ImageNet images
    /// at the GPU saturation batch size (§4.2.3: ≥300; we use 512).
    pub fn paper_inference() -> Self {
        Self {
            total_images: 50_000,
            batch_size: 512,
        }
    }

    /// The paper's configuration-space workload (Figures 9/10): one
    /// million images.
    pub fn paper_million() -> Self {
        Self {
            total_images: 1_000_000,
            batch_size: 512,
        }
    }

    /// Number of batches `n = ⌈W / b⌉` (Eq. 3).
    pub fn batches(&self) -> u64 {
        if self.batch_size == 0 {
            return 0;
        }
        self.total_images.div_ceil(self.batch_size as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads() {
        assert_eq!(Workload::paper_inference().total_images, 50_000);
        assert_eq!(Workload::paper_million().total_images, 1_000_000);
    }

    #[test]
    fn batch_count_rounds_up() {
        let w = Workload {
            total_images: 1000,
            batch_size: 300,
        };
        assert_eq!(w.batches(), 4);
        let exact = Workload {
            total_images: 1024,
            batch_size: 512,
        };
        assert_eq!(exact.batches(), 2);
    }

    #[test]
    fn zero_batch_size_is_zero_batches() {
        let w = Workload {
            total_images: 10,
            batch_size: 0,
        };
        assert_eq!(w.batches(), 0);
    }
}
