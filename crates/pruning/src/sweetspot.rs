//! Sweet-spot detection (paper Observation 1): the prune range where
//! accuracy stays (nearly) flat while inference time falls.

use serde::{Deserialize, Serialize};

/// A detected sweet-spot region for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweetSpot {
    /// Largest prune ratio with accuracy within tolerance of unpruned —
    /// the paper's "last sweet-spot".
    pub last_ratio: f64,
    /// Accuracy at the last sweet-spot ratio.
    pub accuracy_at_last: f64,
    /// Time factor at the last sweet-spot ratio (relative to unpruned).
    pub time_factor_at_last: f64,
}

/// Detect the sweet-spot region of an accuracy curve.
///
/// `accuracy_curve` and `time_curve` are `(ratio, value)` series over the
/// same ascending ratio grid; `tolerance` is the maximum *absolute*
/// accuracy drop (in accuracy units) still considered "unchanged".
/// Returns `None` for empty input.
pub fn sweet_spot(
    accuracy_curve: &[(f64, f64)],
    time_curve: &[(f64, f64)],
    tolerance: f64,
) -> Option<SweetSpot> {
    let (_, base_acc) = *accuracy_curve.first()?;
    let mut last = None;
    for (i, &(ratio, acc)) in accuracy_curve.iter().enumerate() {
        if base_acc - acc <= tolerance {
            let time_factor = time_curve
                .iter()
                .find(|(r, _)| (*r - ratio).abs() < 1e-12)
                .map(|&(_, t)| t)
                .or_else(|| time_curve.get(i).map(|&(_, t)| t))
                .unwrap_or(1.0);
            last = Some(SweetSpot {
                last_ratio: ratio,
                accuracy_at_last: acc,
                time_factor_at_last: time_factor,
            });
        } else {
            break; // region is a prefix: stop at the first violation
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::caffenet_profile;
    use crate::sensitivity::{standard_ratio_grid, sweep_layer};

    #[test]
    fn detects_flat_prefix() {
        let acc = vec![(0.0, 0.8), (0.1, 0.8), (0.2, 0.79), (0.3, 0.6), (0.4, 0.3)];
        let time = vec![(0.0, 1.0), (0.1, 0.95), (0.2, 0.9), (0.3, 0.85), (0.4, 0.8)];
        let ss = sweet_spot(&acc, &time, 0.015).unwrap();
        assert_eq!(ss.last_ratio, 0.2);
        assert_eq!(ss.time_factor_at_last, 0.9);
    }

    #[test]
    fn stops_at_first_violation_even_if_curve_recovers() {
        let acc = vec![(0.0, 0.8), (0.1, 0.5), (0.2, 0.8)];
        let time = vec![(0.0, 1.0), (0.1, 0.9), (0.2, 0.8)];
        let ss = sweet_spot(&acc, &time, 0.01).unwrap();
        assert_eq!(ss.last_ratio, 0.0);
    }

    #[test]
    fn empty_curve_is_none() {
        assert!(sweet_spot(&[], &[], 0.1).is_none());
    }

    #[test]
    fn caffenet_conv_sweet_spots_match_paper() {
        // §4.3.2: last sweet-spots are conv1 @ 30 % and conv2 @ 50 %.
        let p = caffenet_profile();
        let grid = standard_ratio_grid();
        let s1 = sweep_layer(&p, "conv1", &grid);
        let ss1 = sweet_spot(&s1.top5_curve(), &s1.time_curve(), 1e-9).unwrap();
        assert_eq!(ss1.last_ratio, 0.3);
        let s2 = sweep_layer(&p, "conv2", &grid);
        let ss2 = sweet_spot(&s2.top5_curve(), &s2.time_curve(), 1e-9).unwrap();
        assert_eq!(ss2.last_ratio, 0.5);
        // Within the sweet spot, time already fell.
        assert!(ss2.time_factor_at_last < 1.0);
    }

    #[test]
    fn tolerance_extends_region() {
        let p = caffenet_profile();
        let grid = standard_ratio_grid();
        let s = sweep_layer(&p, "conv2", &grid);
        let strict = sweet_spot(&s.top5_curve(), &s.time_curve(), 1e-9).unwrap();
        let loose = sweet_spot(&s.top5_curve(), &s.time_curve(), 0.10).unwrap();
        assert!(loose.last_ratio >= strict.last_ratio);
    }
}
