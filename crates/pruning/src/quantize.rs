//! Quantization — the paper's §2.1 alternative accuracy knob \[7, 32\]:
//! shorten the bit-width of weight values. Unlike pruning, quantization
//! mainly buys memory (and time only with hardware support), which is
//! why the paper picks pruning for the cloud; implementing it lets the
//! explorer compare the two knobs.
//!
//! This module is the **simulated** knob: it rounds f32 weights onto a
//! `bits`-level grid in place and reports the storage/error trade-off
//! at any width from 1 to 32 bits, while execution stays on the f32
//! kernels. The *executed* 8-bit member of the family lives in
//! `cap_tensor::quant`: symmetric int8 weights and activations run on
//! integer GEMM/SpMM kernels, selected by `CAP_TENSOR_PRECISION=int8`
//! (see `cap_tensor::precision`). Use this module to sweep bit widths
//! analytically; use the real path to measure what int8 actually costs
//! and saves.

use cap_tensor::{Matrix, ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// Result of quantizing a weight matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizationReport {
    /// Bits per weight after quantization.
    pub bits: u8,
    /// Compression ratio versus f32 storage (e.g. 4.0 for 8-bit).
    pub compression: f64,
    /// Root-mean-square quantization error over the matrix.
    pub rms_error: f64,
    /// Maximum absolute quantization error.
    pub max_error: f64,
}

/// Uniform symmetric quantization: map weights onto `2^bits − 1` evenly
/// spaced levels across `[-max|w|, +max|w|]`, then reconstruct. The
/// matrix is modified in place to its dequantized (lossy) values —
/// exactly what inference-time dequantization produces.
pub fn quantize_uniform(weights: &mut Matrix, bits: u8) -> TensorResult<QuantizationReport> {
    if bits == 0 || bits > 32 {
        return Err(ShapeError::new(format!(
            "quantize_uniform: bits {bits} outside [1, 32]"
        )));
    }
    let data = weights.as_mut_slice();
    let max_abs = data.iter().fold(0.0_f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 || data.is_empty() {
        return Ok(QuantizationReport {
            bits,
            compression: 32.0 / bits as f64,
            rms_error: 0.0,
            max_error: 0.0,
        });
    }
    // `bits` is validated ≤ 32, so the u64 shift cannot overflow; the
    // old `bits.min(31)` clamp silently gave 32-bit requests a 2^31−1
    // grid (double the intended step at full width).
    let levels = ((1u64 << bits) - 1) as f32;
    let step = 2.0 * max_abs / levels;
    let mut sq_err = 0.0_f64;
    let mut max_err = 0.0_f64;
    for v in data.iter_mut() {
        let q = ((*v + max_abs) / step).round() * step - max_abs;
        let err = (q - *v).abs() as f64;
        sq_err += err * err;
        max_err = max_err.max(err);
        *v = q;
    }
    Ok(QuantizationReport {
        bits,
        compression: 32.0 / bits as f64,
        rms_error: (sq_err / data.len() as f64).sqrt(),
        max_error: max_err,
    })
}

/// Modelled relative accuracy damage of `bits`-bit quantization,
/// calibrated to the literature the paper cites: lossless at ≥ 8 bits
/// \[32\], mild at 5–7, steep below 4.
pub fn quantization_damage(bits: u8) -> f64 {
    match bits {
        0 => 1.0,
        1 => 0.60,
        2 => 0.30,
        3 => 0.12,
        4 => 0.04,
        5 => 0.015,
        6 => 0.006,
        7 => 0.002,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) as f32 * 0.37).sin() * 0.5)
    }

    #[test]
    fn high_bit_quantization_is_near_lossless() {
        let original = sample();
        let mut q = original.clone();
        let report = quantize_uniform(&mut q, 16).unwrap();
        assert!(report.max_error < 1e-4, "max err {}", report.max_error);
        assert!(q.max_abs_diff(&original).unwrap() < 1e-4);
    }

    #[test]
    fn one_bit_collapses_to_two_levels() {
        let mut q = sample();
        quantize_uniform(&mut q, 1).unwrap();
        let distinct: std::collections::BTreeSet<u32> =
            q.as_slice().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() <= 2, "levels {}", distinct.len());
    }

    #[test]
    fn error_decreases_with_bits() {
        let mut prev = f64::INFINITY;
        for bits in [2u8, 4, 6, 8, 12] {
            let mut q = sample();
            let r = quantize_uniform(&mut q, bits).unwrap();
            assert!(r.rms_error <= prev + 1e-12, "bits {bits}");
            prev = r.rms_error;
        }
    }

    #[test]
    fn compression_ratio_is_32_over_bits() {
        let mut q = sample();
        let r = quantize_uniform(&mut q, 8).unwrap();
        assert_eq!(r.compression, 4.0);
    }

    #[test]
    fn zero_matrix_is_fixed_point() {
        let mut q = Matrix::zeros(4, 4);
        let r = quantize_uniform(&mut q, 4).unwrap();
        assert_eq!(r.rms_error, 0.0);
        assert!(q.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn thirty_two_bit_grid_is_full_width() {
        // The former `bits.min(31)` clamp silently halved the level
        // count at 32 bits. At f32 resolution both grids reconstruct
        // essentially losslessly, so the observable contract is: 32 is
        // accepted, reports 1.0× compression, and is no worse than the
        // 31-bit grid.
        let mut q31 = sample();
        let r31 = quantize_uniform(&mut q31, 31).unwrap();
        let mut q32 = sample();
        let r32 = quantize_uniform(&mut q32, 32).unwrap();
        assert_eq!(r32.compression, 1.0);
        assert!(r32.rms_error <= r31.rms_error + 1e-12);
    }

    #[test]
    fn rejects_invalid_bits() {
        let mut q = sample();
        assert!(quantize_uniform(&mut q, 0).is_err());
        assert!(quantize_uniform(&mut q, 33).is_err());
    }

    #[test]
    fn damage_model_monotone_in_bits() {
        for b in 0..10u8 {
            assert!(quantization_damage(b) >= quantization_damage(b + 1));
        }
        assert_eq!(quantization_damage(8), 0.0);
    }

    proptest! {
        #[test]
        fn prop_quantization_error_bounded_by_half_step(bits in 2u8..16) {
            let original = sample();
            let mut q = original.clone();
            let report = quantize_uniform(&mut q, bits).unwrap();
            let max_abs = original.as_slice().iter().fold(0.0_f32, |m, v| m.max(v.abs()));
            let step = 2.0 * max_abs / (((1u64 << bits) - 1) as f32);
            prop_assert!(report.max_error <= step as f64 / 2.0 + 1e-6);
        }

        #[test]
        fn prop_idempotent(bits in 2u8..12) {
            // Quantizing an already-quantized matrix with the same grid
            // keeps values on grid: error of the second pass is ~0.
            let mut q = sample();
            quantize_uniform(&mut q, bits).unwrap();
            let snapshot = q.clone();
            let r2 = quantize_uniform(&mut q, bits).unwrap();
            // The second pass may rescale if max|w| moved off-level, so
            // allow a tiny wobble rather than exact equality.
            prop_assert!(q.max_abs_diff(&snapshot).unwrap() <= (2.0 * r2.max_error as f32) + 1e-6);
        }
    }
}
