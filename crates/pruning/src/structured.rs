//! Structured scored pruning in the spirit of Anwar et al. \[3\]: like
//! L1-norm filter pruning, but filters are ranked by a richer score that
//! weighs a filter's magnitude against its *distinctiveness* — filters
//! similar to other surviving filters are cheaper to remove (the network
//! retains a near-duplicate).

use cap_tensor::{Matrix, ShapeError, TensorResult};

/// Score of each filter: `l1_norm × (1 − max_cosine_similarity_to_others)`.
///
/// A filter with large weights but a near-duplicate elsewhere scores low;
/// a small but unique filter scores higher than pure magnitude would give
/// it.
pub fn filter_scores(weights: &Matrix) -> Vec<f32> {
    let rows = weights.rows();
    let mut norms = vec![0.0_f32; rows];
    let mut l2 = vec![0.0_f32; rows];
    for r in 0..rows {
        norms[r] = weights.row(r).iter().map(|v| v.abs()).sum();
        l2[r] = weights.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
    }
    (0..rows)
        .map(|r| {
            let mut max_sim = 0.0_f32;
            if l2[r] > 0.0 {
                for o in 0..rows {
                    if o == r || l2[o] == 0.0 {
                        continue;
                    }
                    let dot: f32 = weights
                        .row(r)
                        .iter()
                        .zip(weights.row(o).iter())
                        .map(|(a, b)| a * b)
                        .sum();
                    max_sim = max_sim.max((dot / (l2[r] * l2[o])).abs());
                }
            }
            norms[r] * (1.0 - max_sim.min(1.0))
        })
        .collect()
}

/// Zero out the `ratio` fraction of filters with the lowest score.
/// Returns pruned filter indices, sorted ascending.
pub fn prune_structured(weights: &mut Matrix, ratio: f64) -> TensorResult<Vec<usize>> {
    if !(0.0..=1.0).contains(&ratio) {
        return Err(ShapeError::new(format!(
            "prune_structured: ratio {ratio} outside [0, 1]"
        )));
    }
    let rows = weights.rows();
    if rows == 0 {
        return Ok(Vec::new());
    }
    let k = ((rows as f64) * ratio).round() as usize;
    let scores = filter_scores(weights);
    let mut idx: Vec<usize> = (0..rows).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut pruned: Vec<usize> = idx.into_iter().take(k).collect();
    pruned.sort_unstable();
    for &r in &pruned {
        weights.row_mut(r).fill(0.0);
    }
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_filters_score_near_zero() {
        // Rows 0 and 1 identical (cos sim 1), row 2 orthogonal.
        let m = Matrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        let scores = filter_scores(&m);
        assert!(scores[0] < 1e-6);
        assert!(scores[1] < 1e-6);
        assert!(scores[2] > 0.5);
    }

    #[test]
    fn prunes_redundant_over_small_unique() {
        // Row 2 is small but unique; rows 0/1 are big duplicates.
        let mut m = Matrix::from_vec(3, 2, vec![2.0, 0.0, 2.0, 0.0, 0.0, 0.3]).unwrap();
        let pruned = prune_structured(&mut m, 1.0 / 3.0).unwrap();
        assert!(pruned == vec![0] || pruned == vec![1]);
        assert_eq!(m.row(2), &[0.0, 0.3]);
    }

    #[test]
    fn differs_from_pure_l1_ranking() {
        // Pure L1 would prune row 2 (norm 0.3); the structured score
        // prunes a duplicate instead.
        let mut by_l1 = Matrix::from_vec(3, 2, vec![2.0, 0.0, 2.0, 0.0, 0.0, 0.3]).unwrap();
        let mut by_score = by_l1.clone();
        let p1 = crate::filter::prune_filters_l1(&mut by_l1, 1.0 / 3.0).unwrap();
        let p2 = prune_structured(&mut by_score, 1.0 / 3.0).unwrap();
        assert_eq!(p1, vec![2]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn full_and_zero_ratio() {
        let mut m = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 + 1.0);
        assert!(prune_structured(&mut m, 0.0).unwrap().is_empty());
        let all = prune_structured(&mut m, 1.0).unwrap();
        assert_eq!(all.len(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_bad_ratio() {
        let mut m = Matrix::zeros(2, 2);
        assert!(prune_structured(&mut m, -0.5).is_err());
    }
}
