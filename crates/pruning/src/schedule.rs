//! Gradual pruning schedules: instead of pruning to the target ratio in
//! one shot, sparsity is raised step by step with fine-tuning between
//! steps — the iterative protocol of the pruning literature the paper
//! builds on (Li et al. \[17\] retrain after pruning; Han-style gradual
//! schedules generalize it). One-shot vs gradual is an accuracy/effort
//! trade the `train_prune_measure` example demonstrates.

use serde::{Deserialize, Serialize};

/// A gradual sparsity schedule: a sequence of increasing target ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PruneSchedule {
    steps: Vec<f64>,
}

impl PruneSchedule {
    /// One-shot schedule: jump straight to `target`.
    pub fn one_shot(target: f64) -> Self {
        Self {
            steps: vec![target.clamp(0.0, 1.0)],
        }
    }

    /// Linear schedule: `steps` equal increments from `initial` to
    /// `target` (both clamped to `\[0, 1\]`; `steps ≥ 1`).
    pub fn linear(initial: f64, target: f64, steps: usize) -> Self {
        let steps_n = steps.max(1);
        let (lo, hi) = (initial.clamp(0.0, 1.0), target.clamp(0.0, 1.0));
        Self {
            steps: (1..=steps_n)
                .map(|i| lo + (hi - lo) * i as f64 / steps_n as f64)
                .collect(),
        }
    }

    /// Cubic schedule (Zhu–Gupta style): sparsity rises fast early and
    /// flattens near the target — `s(t) = hi − (hi − lo)·(1 − t)³`.
    pub fn cubic(initial: f64, target: f64, steps: usize) -> Self {
        let steps_n = steps.max(1);
        let (lo, hi) = (initial.clamp(0.0, 1.0), target.clamp(0.0, 1.0));
        Self {
            steps: (1..=steps_n)
                .map(|i| {
                    let t = i as f64 / steps_n as f64;
                    hi - (hi - lo) * (1.0 - t).powi(3)
                })
                .collect(),
        }
    }

    /// The schedule's target (final) ratio.
    pub fn target(&self) -> f64 {
        *self.steps.last().unwrap_or(&0.0)
    }

    /// Number of pruning steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the schedule has no steps (never constructed by the
    /// public constructors, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterate target ratios in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.steps.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_shot_is_single_step() {
        let s = PruneSchedule::one_shot(0.7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.target(), 0.7);
    }

    #[test]
    fn linear_ends_at_target_with_equal_increments() {
        let s = PruneSchedule::linear(0.0, 0.8, 4);
        let steps: Vec<f64> = s.iter().collect();
        assert_eq!(steps.len(), 4);
        assert!((steps[0] - 0.2).abs() < 1e-12);
        assert!((steps[3] - 0.8).abs() < 1e-12);
        for w in steps.windows(2) {
            assert!(((w[1] - w[0]) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn cubic_front_loads_sparsity() {
        let lin = PruneSchedule::linear(0.0, 0.9, 5);
        let cub = PruneSchedule::cubic(0.0, 0.9, 5);
        let l: Vec<f64> = lin.iter().collect();
        let c: Vec<f64> = cub.iter().collect();
        // Same endpoint...
        assert!((l[4] - c[4]).abs() < 1e-12);
        // ...but cubic is ahead at every interior step.
        for i in 0..4 {
            assert!(c[i] > l[i], "step {i}: cubic {} vs linear {}", c[i], l[i]);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let s = PruneSchedule::linear(-0.5, 1.5, 3);
        assert_eq!(s.target(), 1.0);
        assert!(s.iter().all(|r| (0.0..=1.0).contains(&r)));
    }

    proptest! {
        #[test]
        fn prop_schedules_monotone_nondecreasing(
            lo in 0.0f64..0.5, hi in 0.5f64..1.0, steps in 1usize..12
        ) {
            for s in [PruneSchedule::linear(lo, hi, steps), PruneSchedule::cubic(lo, hi, steps)] {
                let v: Vec<f64> = s.iter().collect();
                for w in v.windows(2) {
                    prop_assert!(w[1] + 1e-12 >= w[0]);
                }
                prop_assert!((s.target() - hi).abs() < 1e-9);
            }
        }
    }
}
