//! Calibrated application profiles — the measurement substitute.
//!
//! The paper's accuracy and time numbers come from running pruned
//! Caffenet/Googlenet on real EC2 GPUs with models trained on 1.2 M
//! ImageNet images. Neither the trained weights nor the hardware are
//! available here, so this module supplies *calibrated analytic profiles*
//! whose outputs match the paper's reported anchors (DESIGN.md §5):
//!
//! * Per-layer **accuracy damage curves** with a sweet-spot knee: flat
//!   until the knee ratio, then a power-law drop (Figures 6, 7).
//! * A **multi-layer interaction** term reproducing Figure 8: combining
//!   individually-harmless sweet spots costs accuracy
//!   (`nonpruned 80 % → conv1-2 70 % → all-conv 62 %` top-5).
//! * Per-layer **batched time shares** calibrated so single-layer and
//!   multi-layer pruning reproduce the paper's minute-level numbers
//!   (19 → 18.4/16.7/13/11 min), and **single-inference shares** matching
//!   Figure 3's 51/16/9/10/7 % distribution and Figure 4's
//!   0.09 s → 0.05 s sweep.
//!
//! The same `PruneSpec` drives both this model (paper scale) and real
//! pruned-weight execution (`cap_cnn::models::TinyNet` scale), so every
//! downstream consumer is exercised against genuinely measured numbers
//! too.

use crate::spec::PruneSpec;
use serde::{Deserialize, Serialize};

/// Reference ratio at which `max_damage` is reached (the paper sweeps
/// pruning up to 90 %).
const DAMAGE_REF_RATIO: f64 = 0.9;

/// Per-convolution-layer calibration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Layer name, matching the model's layer names.
    pub name: String,
    /// Share of single-inference latency (Figure 3 measurement).
    pub single_time_share: f64,
    /// Share of saturated-batch inference time (calibrated to Figure 6).
    pub batched_time_share: f64,
    /// Prune ratio up to which accuracy is unaffected (sweet-spot knee).
    pub knee: f64,
    /// Relative accuracy damage when pruned at the 90 % reference ratio.
    pub max_damage: f64,
    /// Exponent of the post-knee damage power law.
    pub damage_exponent: f64,
    /// Sensitivity weight in the multi-layer interaction term.
    pub kappa: f64,
}

impl LayerProfile {
    /// Relative accuracy damage from pruning this layer alone at `ratio`.
    /// Zero below the knee; power-law growth beyond it, clamped to 1.
    pub fn damage(&self, ratio: f64) -> f64 {
        let ratio = ratio.clamp(0.0, 1.0);
        if ratio <= self.knee {
            return 0.0;
        }
        let span = (DAMAGE_REF_RATIO - self.knee).max(1e-9);
        let x = (ratio - self.knee) / span;
        (self.max_damage * x.powf(self.damage_exponent)).min(1.0)
    }
}

/// Parameters of a saturating two-term interaction `η·(1 − e^(−λx))`
/// (time) or power-law `γ·x^p` (accuracy).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Interaction {
    /// Magnitude coefficient.
    pub scale: f64,
    /// Shape parameter (λ for saturating form, exponent for power form).
    pub shape: f64,
}

/// Calibrated cost-accuracy profile of one CNN application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (`caffenet`, `googlenet`).
    pub name: String,
    /// Unpruned top-1 accuracy in `[0, 1]`.
    pub base_top1: f64,
    /// Unpruned top-5 accuracy in `[0, 1]`.
    pub base_top5: f64,
    /// Unpruned single-inference latency on the reference GPU (K80), s.
    pub base_single_latency_s: f64,
    /// Unpruned per-image time at saturated batch on the reference GPU, s.
    /// (Caffenet: 19 min for 50 000 images.)
    pub base_batched_s_per_image: f64,
    /// Per-layer calibrations (prunable convolution layers).
    pub layers: Vec<LayerProfile>,
    /// Fraction of a layer's time eliminated at prune ratio 1 (sparse
    /// kernels have bookkeeping overhead, so < 1).
    pub prune_efficiency_batched: f64,
    /// Same, for single-inference latency (lower: small batches cannot
    /// amortize sparse-format overheads as well).
    pub prune_efficiency_single: f64,
    /// Multi-layer *time* interaction: extra saving `scale·(1−e^(−shape·x))`
    /// where `x` is the spec's excess ratio mass.
    pub time_interaction: Interaction,
    /// Multi-layer *accuracy* interaction: extra damage `scale·x^shape`.
    pub accuracy_interaction: Interaction,
}

impl AppProfile {
    /// Names of the prunable convolution layers, in order.
    pub fn conv_layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name.as_str()).collect()
    }

    /// Look up a layer's calibration by name.
    pub fn layer(&self, name: &str) -> Option<&LayerProfile> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Kappa-weighted excess ratio mass: `Σ κ·r − max κ·r` over pruned
    /// layers. Zero when at most one layer is pruned — interactions only
    /// kick in for multi-layer pruning (§4.3.2).
    fn excess(&self, spec: &PruneSpec) -> f64 {
        let mut sum = 0.0;
        let mut max = 0.0_f64;
        for (layer, ratio) in spec.iter() {
            let kappa = self.layer(layer).map_or(1.0, |l| l.kappa);
            let s = kappa * ratio;
            sum += s;
            max = max.max(s);
        }
        (sum - max).max(0.0)
    }

    /// Total relative accuracy damage of a degree of pruning, in `[0, 1]`.
    pub fn damage(&self, spec: &PruneSpec) -> f64 {
        let mut d: f64 = spec
            .iter()
            .filter_map(|(name, ratio)| self.layer(name).map(|l| l.damage(ratio)))
            .sum();
        let x = self.excess(spec);
        if x > 0.0 {
            d += self.accuracy_interaction.scale * x.powf(self.accuracy_interaction.shape);
        }
        d.clamp(0.0, 1.0)
    }

    /// `(top1, top5)` inference accuracy for a degree of pruning.
    pub fn accuracy(&self, spec: &PruneSpec) -> (f64, f64) {
        let retention = 1.0 - self.damage(spec);
        (self.base_top1 * retention, self.base_top5 * retention)
    }

    /// Multiplicative factor on *saturated-batch* inference time for a
    /// degree of pruning (1.0 unpruned, decreasing with pruning).
    pub fn batched_time_factor(&self, spec: &PruneSpec) -> f64 {
        let mut saved = 0.0;
        for (name, ratio) in spec.iter() {
            if let Some(l) = self.layer(name) {
                saved += l.batched_time_share * self.prune_efficiency_batched * ratio;
            }
        }
        let linear = (1.0 - saved).max(0.0);
        let x = self.excess(spec);
        let interaction = if x > 0.0 {
            1.0 - self.time_interaction.scale * (1.0 - (-self.time_interaction.shape * x).exp())
        } else {
            1.0
        };
        (linear * interaction).clamp(0.02, 1.0)
    }

    /// Multiplicative factor on *single-inference* latency (Figure 4).
    pub fn single_time_factor(&self, spec: &PruneSpec) -> f64 {
        let mut saved = 0.0;
        for (name, ratio) in spec.iter() {
            if let Some(l) = self.layer(name) {
                saved += l.single_time_share * self.prune_efficiency_single * ratio;
            }
        }
        (1.0 - saved).clamp(0.02, 1.0)
    }

    /// Per-image time at saturated batch on the reference GPU, seconds.
    pub fn batched_s_per_image(&self, spec: &PruneSpec) -> f64 {
        self.base_batched_s_per_image * self.batched_time_factor(spec)
    }

    /// Single-inference latency on the reference GPU, seconds.
    pub fn single_latency_s(&self, spec: &PruneSpec) -> f64 {
        self.base_single_latency_s * self.single_time_factor(spec)
    }

    /// Uniform-pruning spec over every prunable conv layer.
    pub fn uniform_spec(&self, ratio: f64) -> PruneSpec {
        PruneSpec::uniform(&self.conv_layer_names(), ratio)
    }

    /// Spec pruning every layer to its sweet-spot knee (the paper's
    /// `all-conv` configuration when applied to Caffenet).
    pub fn all_knees_spec(&self) -> PruneSpec {
        let mut s = PruneSpec::none();
        for l in &self.layers {
            s.set(l.name.clone(), l.knee);
        }
        s
    }
}

/// Calibrated Caffenet profile (anchors: Figures 3, 4, 6, 8).
pub fn caffenet_profile() -> AppProfile {
    let layer = |name: &str, single: f64, batched: f64, knee: f64, max_damage: f64| LayerProfile {
        name: name.to_string(),
        single_time_share: single,
        batched_time_share: batched,
        knee,
        max_damage,
        damage_exponent: 1.4,
        kappa: 1.0,
    };
    AppProfile {
        name: "caffenet".to_string(),
        base_top1: 0.57,
        base_top5: 0.80,
        base_single_latency_s: 0.090,
        // 19 minutes for 50 000 images on p2.xlarge.
        base_batched_s_per_image: 19.0 * 60.0 / 50_000.0,
        layers: vec![
            // Figure 3 single shares: 51/16/9/10/7 %. Batched shares are
            // calibrated from Figure 6's minute-level endpoints (conv1's
            // huge surface is bandwidth-bound at batch, shrinking its share).
            layer("conv1", 0.51, 0.108, 0.30, 1.00),
            layer("conv2", 0.16, 0.250, 0.50, 0.6875),
            layer("conv3", 0.09, 0.065, 0.50, 0.6875),
            layer("conv4", 0.10, 0.065, 0.50, 0.6875),
            layer("conv5", 0.07, 0.043, 0.50, 0.6875),
        ],
        prune_efficiency_batched: 0.97,
        // Figure 4: 0.09 s -> 0.05 s at uniform 90 %: 1 − e·0.93·0.9 = 0.556.
        prune_efficiency_single: 0.53,
        // Calibrated to Figure 8: 19 -> 13 min (conv1-2) and 19 -> 11 min
        // (all-conv) given the linear shares above.
        time_interaction: Interaction {
            scale: 0.241,
            shape: 5.3,
        },
        // Calibrated to Figure 8 accuracy: 80 -> 70 % and 80 -> 62 % top-5.
        accuracy_interaction: Interaction {
            scale: 0.185,
            shape: 0.328,
        },
    }
}

/// Calibrated Googlenet profile (anchors: Figures 4, 7).
pub fn googlenet_profile() -> AppProfile {
    let mut layers = Vec::new();
    let mut push = |name: String, single: f64, batched: f64, max_damage: f64, kappa: f64| {
        layers.push(LayerProfile {
            name,
            single_time_share: single,
            batched_time_share: batched,
            knee: 0.60,
            max_damage,
            damage_exponent: 1.4,
            kappa,
        });
    };
    // Stem. conv2-3x3 dominates batched time (Figure 7b: 13 -> 9 min).
    push("conv1-7x7-s2".into(), 0.10, 0.05, 1.00, 1.2);
    push("conv2-3x3-reduce".into(), 0.02, 0.01, 0.55, 1.0);
    push("conv2-3x3".into(), 0.12, 0.34, 0.65, 1.0);
    // Nine inception modules, six convs each. Shares decline with depth
    // (spatial size shrinks); 5x5 branches are the heavier ones per tap.
    let tags = ["3a", "3b", "4a", "4b", "4c", "4d", "4e", "5a", "5b"];
    let module_single = [0.12, 0.13, 0.08, 0.08, 0.08, 0.09, 0.09, 0.02, 0.02];
    let module_batched = [0.05, 0.09, 0.05, 0.05, 0.05, 0.06, 0.06, 0.045, 0.045];
    let branch_split = [
        ("1x1", 0.15),
        ("3x3-reduce", 0.10),
        ("3x3", 0.35),
        ("5x5-reduce", 0.05),
        ("5x5", 0.25),
        ("pool-proj", 0.10),
    ];
    for (i, tag) in tags.iter().enumerate() {
        for (branch, frac) in branch_split {
            push(
                format!("inception-{tag}-{branch}"),
                module_single[i] * frac,
                module_batched[i] * frac,
                0.65,
                1.0,
            );
        }
    }
    AppProfile {
        name: "googlenet".to_string(),
        base_top1: 0.66,
        base_top5: 0.88,
        base_single_latency_s: 0.160,
        // ~13 minutes for 50 000 images (Figure 7 time axes).
        base_batched_s_per_image: 13.0 * 60.0 / 50_000.0,
        layers,
        prune_efficiency_batched: 0.97,
        // Figure 4: 0.16 s -> 0.10 s at uniform 90 %.
        prune_efficiency_single: 0.44,
        time_interaction: Interaction {
            scale: 0.20,
            shape: 4.0,
        },
        accuracy_interaction: Interaction {
            scale: 0.16,
            shape: 0.35,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn caffenet_unpruned_anchors() {
        let p = caffenet_profile();
        let none = PruneSpec::none();
        assert_eq!(p.accuracy(&none), (0.57, 0.80));
        assert!(close(p.single_latency_s(&none), 0.090, 1e-9));
        assert!(close(
            p.batched_s_per_image(&none) * 50_000.0 / 60.0,
            19.0,
            1e-9
        ));
    }

    #[test]
    fn fig4_caffenet_single_inference_halves_at_90pct() {
        let p = caffenet_profile();
        let spec = p.uniform_spec(0.9);
        let t = p.single_latency_s(&spec);
        assert!(close(t, 0.050, 0.003), "0.09 -> {t}");
    }

    #[test]
    fn fig4_googlenet_single_inference_drops_to_0_10() {
        let p = googlenet_profile();
        let spec = p.uniform_spec(0.9);
        let t = p.single_latency_s(&spec);
        assert!(close(t, 0.100, 0.008), "0.16 -> {t}");
    }

    #[test]
    fn fig6_caffenet_single_layer_time_anchors() {
        let p = caffenet_profile();
        let minutes = |spec: &PruneSpec| p.batched_s_per_image(spec) * 50_000.0 / 60.0;
        // conv1 @ 90 %: 19 -> ~16.6 min (paper); conv2 @ 90 %: 19 -> ~14 min.
        assert!(close(minutes(&PruneSpec::single("conv1", 0.9)), 16.6, 0.8));
        assert!(close(minutes(&PruneSpec::single("conv2", 0.9)), 14.0, 1.0));
        // The individually-pruned sweet spots quoted in §4.3.2.
        assert!(close(minutes(&PruneSpec::single("conv1", 0.3)), 18.4, 0.3));
        assert!(close(minutes(&PruneSpec::single("conv2", 0.5)), 16.7, 0.3));
    }

    #[test]
    fn fig6_sweet_spots_have_zero_accuracy_damage() {
        let p = caffenet_profile();
        assert_eq!(p.damage(&PruneSpec::single("conv1", 0.30)), 0.0);
        assert_eq!(p.damage(&PruneSpec::single("conv2", 0.50)), 0.0);
        assert!(p.damage(&PruneSpec::single("conv1", 0.50)) > 0.0);
        assert!(p.damage(&PruneSpec::single("conv2", 0.70)) > 0.0);
    }

    #[test]
    fn fig6_conv1_most_accuracy_sensitive() {
        let p = caffenet_profile();
        // conv1 @ 90 %: top-5 drops to ~0; others bottom out near 25 %.
        let (_, top5_conv1) = p.accuracy(&PruneSpec::single("conv1", 0.9));
        assert!(top5_conv1 < 0.02, "conv1@90 top5 {top5_conv1}");
        let (_, top5_conv3) = p.accuracy(&PruneSpec::single("conv3", 0.9));
        assert!(close(top5_conv3, 0.25, 0.02), "conv3@90 top5 {top5_conv3}");
    }

    #[test]
    fn fig8_multi_layer_anchors() {
        let p = caffenet_profile();
        let conv12 = PruneSpec::single("conv1", 0.3).with("conv2", 0.5);
        let all_conv = p.all_knees_spec();
        let minutes = |spec: &PruneSpec| p.batched_s_per_image(spec) * 50_000.0 / 60.0;
        // Time: 19 -> 13 -> 11 minutes.
        assert!(close(minutes(&conv12), 13.0, 0.4), "{}", minutes(&conv12));
        assert!(
            close(minutes(&all_conv), 11.0, 0.4),
            "{}",
            minutes(&all_conv)
        );
        // Top-5: 80 -> 70 -> 62 %.
        let (_, t5_12) = p.accuracy(&conv12);
        let (_, t5_all) = p.accuracy(&all_conv);
        assert!(close(t5_12, 0.70, 0.01), "conv1-2 top5 {t5_12}");
        assert!(close(t5_all, 0.62, 0.01), "all-conv top5 {t5_all}");
    }

    #[test]
    fn fig7_googlenet_conv2_time_anchor() {
        let p = googlenet_profile();
        let minutes = |spec: &PruneSpec| p.batched_s_per_image(spec) * 50_000.0 / 60.0;
        // conv2-3x3 @ 90 %: 13 -> ~9 min (≈30 % reduction).
        let m = minutes(&PruneSpec::single("conv2-3x3", 0.9));
        assert!(close(m, 9.0, 0.5), "conv2-3x3@90 -> {m}");
    }

    #[test]
    fn googlenet_sweet_spots_extend_to_60pct() {
        let p = googlenet_profile();
        for name in ["conv2-3x3", "inception-3a-3x3", "inception-5a-3x3"] {
            assert_eq!(p.damage(&PruneSpec::single(name, 0.60)), 0.0, "{name}");
            assert!(p.damage(&PruneSpec::single(name, 0.75)) > 0.0, "{name}");
        }
    }

    #[test]
    fn googlenet_has_all_57_conv_layers() {
        let p = googlenet_profile();
        assert_eq!(p.layers.len(), 3 + 9 * 6);
        // Layer names line up with the actual model.
        use cap_cnn::models::{googlenet, WeightInit};
        let net = googlenet(WeightInit::Zeros).unwrap();
        let model_convs = net.layers_of_kind(cap_cnn::LayerKind::Convolution);
        for l in &p.layers {
            assert!(
                model_convs.contains(&l.name),
                "profile layer {} not in model",
                l.name
            );
        }
    }

    #[test]
    fn caffenet_layer_names_match_model() {
        use cap_cnn::models::{caffenet, WeightInit};
        let p = caffenet_profile();
        let net = caffenet(WeightInit::Zeros).unwrap();
        let model_convs = net.layers_of_kind(cap_cnn::LayerKind::Convolution);
        assert_eq!(
            p.conv_layer_names(),
            model_convs.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn time_factor_monotone_in_ratio() {
        let p = caffenet_profile();
        let mut prev = 1.0;
        for i in 0..=9 {
            let r = i as f64 / 10.0;
            let f = p.batched_time_factor(&PruneSpec::single("conv2", r));
            assert!(f <= prev + 1e-12, "ratio {r}: {f} > {prev}");
            prev = f;
        }
    }

    #[test]
    fn damage_monotone_and_bounded() {
        let p = caffenet_profile();
        let mut prev = 0.0;
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            let d = p.damage(&p.uniform_spec(r));
            assert!(d >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&d));
            prev = d;
        }
    }

    #[test]
    fn unknown_layers_in_spec_are_ignored_gracefully() {
        let p = caffenet_profile();
        let spec = PruneSpec::single("not-a-layer", 0.9);
        assert_eq!(p.damage(&spec), 0.0);
        assert_eq!(p.batched_time_factor(&spec), 1.0);
    }
}
