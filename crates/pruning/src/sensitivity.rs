//! Per-layer sensitivity sweeps — the experiment behind Figures 6 and 7:
//! prune one layer at a time across a ratio grid and record time and
//! accuracy.

use crate::profile::AppProfile;
use crate::spec::PruneSpec;
use serde::{Deserialize, Serialize};

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Prune ratio applied to the swept layer.
    pub ratio: f64,
    /// Saturated-batch inference time factor relative to unpruned.
    pub time_factor: f64,
    /// Top-1 accuracy.
    pub top1: f64,
    /// Top-5 accuracy.
    pub top5: f64,
}

/// Sweep of one layer across prune ratios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerSweep {
    /// Swept layer name.
    pub layer: String,
    /// Points in ascending ratio order.
    pub points: Vec<SensitivityPoint>,
}

impl LayerSweep {
    /// Accuracy curve as `(ratio, top5)` pairs — the input to sweet-spot
    /// detection.
    pub fn top5_curve(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.ratio, p.top5)).collect()
    }

    /// Time curve as `(ratio, time_factor)` pairs.
    pub fn time_curve(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.ratio, p.time_factor))
            .collect()
    }
}

/// Sweep a single layer of `profile` over `ratios`.
pub fn sweep_layer(profile: &AppProfile, layer: &str, ratios: &[f64]) -> LayerSweep {
    let points = ratios
        .iter()
        .map(|&ratio| {
            let spec = PruneSpec::single(layer, ratio);
            let (top1, top5) = profile.accuracy(&spec);
            SensitivityPoint {
                ratio,
                time_factor: profile.batched_time_factor(&spec),
                top1,
                top5,
            }
        })
        .collect();
    LayerSweep {
        layer: layer.to_string(),
        points,
    }
}

/// Sweep every prunable layer (Figure 6 = all Caffenet convs; Figure 7 =
/// the six selected Googlenet layers, pass them explicitly).
pub fn sweep_layers(profile: &AppProfile, layers: &[&str], ratios: &[f64]) -> Vec<LayerSweep> {
    layers
        .iter()
        .map(|l| sweep_layer(profile, l, ratios))
        .collect()
}

/// The standard 0–90 % grid in 10 % steps used throughout the paper.
pub fn standard_ratio_grid() -> Vec<f64> {
    (0..=9).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::caffenet_profile;

    #[test]
    fn grid_is_0_to_90_in_10s() {
        let g = standard_ratio_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[9], 0.9);
    }

    #[test]
    fn sweep_time_decreases_accuracy_non_increasing() {
        let p = caffenet_profile();
        let sweep = sweep_layer(&p, "conv2", &standard_ratio_grid());
        assert_eq!(sweep.points.len(), 10);
        for w in sweep.points.windows(2) {
            assert!(w[1].time_factor <= w[0].time_factor + 1e-12);
            assert!(w[1].top5 <= w[0].top5 + 1e-12);
            assert!(w[1].top1 <= w[0].top1 + 1e-12);
        }
    }

    #[test]
    fn sweep_all_caffenet_layers() {
        let p = caffenet_profile();
        let names = p.conv_layer_names();
        let sweeps = sweep_layers(&p, &names, &standard_ratio_grid());
        assert_eq!(sweeps.len(), 5);
        // conv1 loses the most accuracy at 90 %.
        let final_top5: Vec<f64> = sweeps.iter().map(|s| s.points[9].top5).collect();
        assert!(final_top5[0] < final_top5[1]);
    }

    #[test]
    fn curves_extract_matching_axes() {
        let p = caffenet_profile();
        let sweep = sweep_layer(&p, "conv3", &[0.0, 0.5, 0.9]);
        let acc = sweep.top5_curve();
        let time = sweep.time_curve();
        assert_eq!(acc.len(), 3);
        assert_eq!(acc[1].0, 0.5);
        assert_eq!(time[2].0, 0.9);
    }
}
