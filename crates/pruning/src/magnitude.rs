//! Element-wise magnitude pruning.

use cap_tensor::{Matrix, ShapeError, TensorResult};

/// Zero out the `ratio` fraction of weights with the smallest absolute
/// value. Returns the achieved sparsity (fraction of zeros after pruning,
/// which can exceed `ratio` if the matrix already contained zeros).
///
/// `ratio` must be in `[0, 1]`. Ties at the threshold break by index
/// order, so the operation is deterministic.
pub fn prune_magnitude(weights: &mut Matrix, ratio: f64) -> TensorResult<f64> {
    if !(0.0..=1.0).contains(&ratio) {
        return Err(ShapeError::new(format!(
            "prune_magnitude: ratio {ratio} outside [0, 1]"
        )));
    }
    let len = weights.len();
    if len == 0 {
        return Ok(0.0);
    }
    let k = ((len as f64) * ratio).round() as usize;
    if k > 0 {
        // Select the k smallest |w| indices.
        let mut idx: Vec<usize> = (0..len).collect();
        let data = weights.as_mut_slice();
        idx.sort_by(|&a, &b| {
            data[a]
                .abs()
                .partial_cmp(&data[b].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in idx.iter().take(k) {
            data[i] = 0.0;
        }
    }
    Ok(weights.sparsity(0.0))
}

/// 0/1 mask of the current non-zero pattern — multiplied into gradients
/// during fine-tuning so pruned weights stay pruned.
pub fn sparsity_mask(weights: &Matrix) -> Vec<f32> {
    weights
        .as_slice()
        .iter()
        .map(|&v| if v == 0.0 { 0.0 } else { 1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_vec(2, 4, vec![0.5, -0.1, 0.9, 0.05, -0.7, 0.2, -0.02, 0.4]).unwrap()
    }

    #[test]
    fn prunes_smallest_magnitudes_first() {
        let mut m = sample();
        let s = prune_magnitude(&mut m, 0.25).unwrap();
        // Smallest two |w|: 0.02 and 0.05.
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.get(0, 2), 0.9);
        assert!((s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_ratio_is_noop() {
        let mut m = sample();
        let before = m.clone();
        prune_magnitude(&mut m, 0.0).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn full_ratio_zeroes_everything() {
        let mut m = sample();
        let s = prune_magnitude(&mut m, 1.0).unwrap();
        assert_eq!(s, 1.0);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_out_of_range_ratio() {
        let mut m = sample();
        assert!(prune_magnitude(&mut m, -0.1).is_err());
        assert!(prune_magnitude(&mut m, 1.1).is_err());
    }

    #[test]
    fn mask_tracks_zero_pattern() {
        let mut m = sample();
        prune_magnitude(&mut m, 0.5).unwrap();
        let mask = sparsity_mask(&m);
        for (v, k) in m.as_slice().iter().zip(mask.iter()) {
            assert_eq!(*k == 0.0, *v == 0.0);
        }
    }

    #[test]
    fn deterministic_on_ties() {
        let mut a = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let mut b = a.clone();
        prune_magnitude(&mut a, 0.5).unwrap();
        prune_magnitude(&mut b, 0.5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.nnz(0.0), 2);
    }

    proptest! {
        #[test]
        fn prop_sparsity_at_least_ratio(ratio in 0.0f64..1.0, seed in 0u64..100) {
            let mut m = Matrix::from_fn(6, 7, |r, c| {
                (((r * 7 + c) as u64 ^ seed) % 13) as f32 - 6.0
            });
            let s = prune_magnitude(&mut m, ratio).unwrap();
            prop_assert!(s + 1e-9 >= (ratio * 42.0).round() / 42.0);
        }

        #[test]
        fn prop_monotone_in_ratio(r1 in 0.0f64..0.5, r2 in 0.5f64..1.0) {
            let base = Matrix::from_fn(5, 5, |r, c| ((r * 5 + c) % 11) as f32 - 5.0);
            let mut a = base.clone();
            let mut b = base;
            let s1 = prune_magnitude(&mut a, r1).unwrap();
            let s2 = prune_magnitude(&mut b, r2).unwrap();
            prop_assert!(s2 >= s1);
        }

        #[test]
        fn prop_survivors_dominate_pruned(ratio in 0.1f64..0.9) {
            let base = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
            let mut pruned = base.clone();
            prune_magnitude(&mut pruned, ratio).unwrap();
            // Every surviving |w| >= every pruned original |w|.
            let mut max_pruned = 0.0_f32;
            let mut min_kept = f32::INFINITY;
            for (orig, now) in base.as_slice().iter().zip(pruned.as_slice().iter()) {
                if *now == 0.0 && *orig != 0.0 {
                    max_pruned = max_pruned.max(orig.abs());
                } else if *now != 0.0 {
                    min_kept = min_kept.min(now.abs());
                }
            }
            prop_assert!(min_kept + 1e-9 >= max_pruned);
        }
    }
}
