//! Weight sharing — the paper's §2.1 alternative knob \[1\]: cluster
//! weights by value and replace each by its cluster centroid, shrinking
//! the distinct-value alphabet (and thus storage) without changing
//! matrix shape. Implemented as deterministic 1-D k-means (Lloyd's
//! algorithm on sorted values).

use cap_tensor::{Matrix, ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// Result of applying weight sharing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeightSharingReport {
    /// Number of clusters requested.
    pub clusters: usize,
    /// Number of clusters actually used (≤ requested).
    pub clusters_used: usize,
    /// Root-mean-square reconstruction error.
    pub rms_error: f64,
    /// Effective bits per weight (`ceil(log2(clusters_used))`) for the
    /// codebook encoding.
    pub bits_per_weight: u8,
}

/// Cluster the matrix's values into at most `clusters` groups by 1-D
/// k-means and replace every weight with its centroid, in place.
///
/// Initialization is deterministic (quantile seeding over the sorted
/// values) and iteration runs to convergence or 50 rounds.
pub fn share_weights(weights: &mut Matrix, clusters: usize) -> TensorResult<WeightSharingReport> {
    if clusters == 0 {
        return Err(ShapeError::new("share_weights: clusters must be >= 1"));
    }
    let n = weights.len();
    if n == 0 {
        return Ok(WeightSharingReport {
            clusters,
            clusters_used: 0,
            rms_error: 0.0,
            bits_per_weight: 0,
        });
    }
    let data = weights.as_mut_slice();
    let mut sorted: Vec<f32> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    let k = clusters.min(n);
    // Quantile seeding.
    let mut centroids: Vec<f32> = (0..k).map(|i| sorted[(i * (n - 1)) / k.max(1)]).collect();
    centroids.dedup();

    for _round in 0..50 {
        // Assign: nearest centroid (centroids stay sorted).
        let mut sums = vec![0.0_f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for &v in data.iter() {
            let idx = nearest(&centroids, v);
            sums[idx] += v as f64;
            counts[idx] += 1;
        }
        let mut moved = 0.0_f32;
        for (i, c) in centroids.iter_mut().enumerate() {
            if counts[i] > 0 {
                let new = (sums[i] / counts[i] as f64) as f32;
                moved = moved.max((new - *c).abs());
                *c = new;
            }
        }
        centroids.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        centroids.dedup();
        if moved < 1e-7 {
            break;
        }
    }

    let mut sq_err = 0.0_f64;
    let mut used = vec![false; centroids.len()];
    for v in data.iter_mut() {
        let idx = nearest(&centroids, *v);
        used[idx] = true;
        let c = centroids[idx];
        let e = (c - *v) as f64;
        sq_err += e * e;
        *v = c;
    }
    let clusters_used = used.iter().filter(|&&u| u).count();
    Ok(WeightSharingReport {
        clusters,
        clusters_used,
        rms_error: (sq_err / n as f64).sqrt(),
        bits_per_weight: (usize::BITS - (clusters_used.max(1) - 1).leading_zeros()).max(1) as u8,
    })
}

/// Index of the nearest centroid (binary search over sorted centroids).
fn nearest(centroids: &[f32], v: f32) -> usize {
    match centroids.binary_search_by(|c| c.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Equal)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= centroids.len() {
                centroids.len() - 1
            } else if (v - centroids[i - 1]).abs() <= (centroids[i] - v).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_fn(12, 12, |r, c| ((r * 12 + c) as f32 * 0.21).cos())
    }

    #[test]
    fn reduces_distinct_values_to_at_most_k() {
        let mut m = sample();
        let r = share_weights(&mut m, 8).unwrap();
        let distinct: std::collections::BTreeSet<u32> =
            m.as_slice().iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() <= 8);
        assert!(r.clusters_used <= 8);
        assert!(r.bits_per_weight <= 3);
    }

    #[test]
    fn many_clusters_is_near_lossless() {
        let original = sample();
        let mut m = original.clone();
        let r = share_weights(&mut m, 144).unwrap();
        assert!(r.rms_error < 1e-3, "rms {}", r.rms_error);
    }

    #[test]
    fn one_cluster_collapses_to_mean() {
        let mut m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        share_weights(&mut m, 1).unwrap();
        assert!(m.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }

    #[test]
    fn error_decreases_with_clusters() {
        let mut prev = f64::INFINITY;
        for k in [2usize, 4, 8, 16, 32] {
            let mut m = sample();
            let r = share_weights(&mut m, k).unwrap();
            assert!(
                r.rms_error <= prev + 1e-9,
                "k={k}: {} > {prev}",
                r.rms_error
            );
            prev = r.rms_error;
        }
    }

    #[test]
    fn zero_clusters_rejected_empty_ok() {
        let mut m = sample();
        assert!(share_weights(&mut m, 0).is_err());
        let mut empty = Matrix::zeros(0, 0);
        let r = share_weights(&mut empty, 4).unwrap();
        assert_eq!(r.clusters_used, 0);
    }

    #[test]
    fn deterministic() {
        let mut a = sample();
        let mut b = sample();
        share_weights(&mut a, 5).unwrap();
        share_weights(&mut b, 5).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_every_value_is_a_centroid(k in 1usize..20) {
            let mut m = sample();
            share_weights(&mut m, k).unwrap();
            let distinct: std::collections::BTreeSet<u32> =
                m.as_slice().iter().map(|v| v.to_bits()).collect();
            prop_assert!(distinct.len() <= k);
        }

        #[test]
        fn prop_rms_bounded_by_value_range(k in 1usize..10) {
            let original = sample();
            let mut m = original.clone();
            let r = share_weights(&mut m, k).unwrap();
            let min = original.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
            let max = original.as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(r.rms_error <= (max - min) as f64 + 1e-9);
        }
    }
}
