//! # cap-pruning
//!
//! Pruning is the paper's accuracy-tuning knob (§3.2.1): selected CNN
//! weights are set to zero, producing sparse layers that execute faster
//! through sparse kernels, at some cost in inference accuracy.
//!
//! This crate provides:
//!
//! * Three pruning algorithms operating on real weight matrices —
//!   element [`magnitude`] pruning, [`filter`] (L1-norm, Li et al. \[17\])
//!   pruning, and [`structured`] scored pruning (Anwar et al. \[3\] style).
//! * [`spec::PruneSpec`] — a *degree of pruning*: per-layer prune ratios,
//!   the unit the paper's configuration space is built from.
//! * [`apply`] — applying a spec to a [`cap_cnn::Network`].
//! * [`sensitivity`] — per-layer ratio sweeps (Figures 6 and 7).
//! * [`sweetspot`] — detecting the prune range where accuracy is flat
//!   while time falls (Observation 1).
//! * [`profile`] — calibrated accuracy/time profiles for paper-scale
//!   Caffenet and Googlenet (substituting for the authors' trained
//!   models; anchors in DESIGN.md §5).

#![warn(missing_docs)]

pub mod apply;
pub mod filter;
pub mod magnitude;
pub mod profile;
pub mod quantize;
pub mod schedule;
pub mod sensitivity;
pub mod spec;
pub mod structured;
pub mod sweetspot;
pub mod weight_sharing;

pub use apply::{apply_to_network, PruneAlgorithm};
pub use filter::prune_filters_l1;
pub use magnitude::prune_magnitude;
pub use profile::{caffenet_profile, googlenet_profile, AppProfile, LayerProfile};
pub use quantize::{quantization_damage, quantize_uniform, QuantizationReport};
pub use schedule::PruneSchedule;
pub use spec::PruneSpec;
pub use structured::prune_structured;
pub use sweetspot::{sweet_spot, SweetSpot};
pub use weight_sharing::{share_weights, WeightSharingReport};
