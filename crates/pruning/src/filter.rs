//! L1-norm filter pruning (Li et al. \[17\]) — the algorithm the paper's
//! measurement pipeline uses.
//!
//! Instead of zeroing individual elements, whole filters (rows of the
//! weight matrix, i.e. entire output channels of a convolution) are
//! ranked by their L1 norm and the weakest are removed. This produces
//! *structured* sparsity: entire rows of the lowered weight matrix become
//! zero, which sparse row kernels exploit directly.

use cap_tensor::{Matrix, ShapeError, TensorResult};

/// Zero out the `ratio` fraction of filters (rows) with the smallest L1
/// norm. Returns the indices of pruned filters, sorted ascending.
pub fn prune_filters_l1(weights: &mut Matrix, ratio: f64) -> TensorResult<Vec<usize>> {
    if !(0.0..=1.0).contains(&ratio) {
        return Err(ShapeError::new(format!(
            "prune_filters_l1: ratio {ratio} outside [0, 1]"
        )));
    }
    let rows = weights.rows();
    if rows == 0 {
        return Ok(Vec::new());
    }
    let k = ((rows as f64) * ratio).round() as usize;
    let mut norms: Vec<(usize, f32)> = (0..rows)
        .map(|r| (r, weights.row(r).iter().map(|v| v.abs()).sum()))
        .collect();
    norms.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut pruned: Vec<usize> = norms.iter().take(k).map(|(r, _)| *r).collect();
    pruned.sort_unstable();
    for &r in &pruned {
        weights.row_mut(r).fill(0.0);
    }
    Ok(pruned)
}

/// L1 norm of every filter (row), in row order — the ranking signal the
/// algorithm uses, exposed for sensitivity reporting.
pub fn filter_l1_norms(weights: &Matrix) -> Vec<f32> {
    (0..weights.rows())
        .map(|r| weights.row(r).iter().map(|v| v.abs()).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        // Row L1 norms: 0.6, 3.0, 0.2, 1.5.
        Matrix::from_vec(4, 2, vec![0.1, 0.5, -1.0, 2.0, 0.1, -0.1, 1.5, 0.0]).unwrap()
    }

    #[test]
    fn prunes_weakest_filters() {
        let mut m = sample();
        let pruned = prune_filters_l1(&mut m, 0.5).unwrap();
        assert_eq!(pruned, vec![0, 2]);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
        assert!(m.row(2).iter().all(|&v| v == 0.0));
        assert_eq!(m.row(1), &[-1.0, 2.0]);
    }

    #[test]
    fn norms_reported_in_row_order() {
        let norms = filter_l1_norms(&sample());
        assert_eq!(norms, vec![0.6, 3.0, 0.2, 1.5]);
    }

    #[test]
    fn zero_and_full_ratio() {
        let mut m = sample();
        assert!(prune_filters_l1(&mut m, 0.0).unwrap().is_empty());
        assert_eq!(m, sample());
        let all = prune_filters_l1(&mut m, 1.0).unwrap();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rejects_bad_ratio() {
        let mut m = sample();
        assert!(prune_filters_l1(&mut m, 2.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_prunes_rounded_fraction_of_rows(rows in 1usize..12, ratio in 0.0f64..1.0) {
            let mut m = Matrix::from_fn(rows, 3, |r, c| (r * 3 + c) as f32 * 0.1 + 0.05);
            let pruned = prune_filters_l1(&mut m, ratio).unwrap();
            prop_assert_eq!(pruned.len(), ((rows as f64) * ratio).round() as usize);
        }

        #[test]
        fn prop_surviving_filters_have_ge_norms(ratio in 0.1f64..0.9) {
            let base = Matrix::from_fn(8, 4, |r, c| ((r * 4 + c) as f32 * 0.73).cos());
            let mut m = base.clone();
            let pruned = prune_filters_l1(&mut m, ratio).unwrap();
            let norms = filter_l1_norms(&base);
            let max_pruned = pruned.iter().map(|&r| norms[r]).fold(0.0_f32, f32::max);
            for (r, norm) in norms.iter().enumerate() {
                if !pruned.contains(&r) {
                    prop_assert!(norm + 1e-6 >= max_pruned);
                }
            }
        }
    }
}
