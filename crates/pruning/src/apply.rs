//! Applying a [`PruneSpec`] to a real [`Network`].

use crate::filter::prune_filters_l1;
use crate::magnitude::prune_magnitude;
use crate::spec::PruneSpec;
use crate::structured::prune_structured;
use cap_cnn::Network;
use cap_tensor::{ShapeError, TensorResult};
use serde::{Deserialize, Serialize};

/// Which pruning algorithm to run on each layer's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneAlgorithm {
    /// Element-wise smallest-magnitude pruning.
    Magnitude,
    /// L1-norm filter pruning (Li et al. \[17\]) — the paper's choice.
    FilterL1,
    /// Structured scored pruning (Anwar et al. \[3\] style).
    Structured,
}

/// Prune the named layers of `net` in place according to `spec`.
///
/// Returns the achieved weight sparsity per layer, in spec order.
/// Errors if a spec'd layer does not exist or carries no weights.
pub fn apply_to_network(
    net: &mut Network,
    spec: &PruneSpec,
    algorithm: PruneAlgorithm,
) -> TensorResult<Vec<(String, f64)>> {
    let mut achieved = Vec::with_capacity(spec.pruned_layer_count());
    for (layer_name, ratio) in spec.iter() {
        let layer = net
            .layer(layer_name)
            .ok_or_else(|| ShapeError::new(format!("apply: no layer named {layer_name}")))?;
        let mut weights = layer
            .weights()
            .ok_or_else(|| ShapeError::new(format!("apply: layer {layer_name} has no weights")))?
            .clone();
        match algorithm {
            PruneAlgorithm::Magnitude => {
                prune_magnitude(&mut weights, ratio)?;
            }
            PruneAlgorithm::FilterL1 => {
                prune_filters_l1(&mut weights, ratio)?;
            }
            PruneAlgorithm::Structured => {
                prune_structured(&mut weights, ratio)?;
            }
        }
        let sparsity = weights.sparsity(0.0);
        net.set_layer_weights(layer_name, weights)?;
        achieved.push((layer_name.to_string(), sparsity));
    }
    Ok(achieved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cap_cnn::layer::{ConvLayer, ReluLayer};
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    fn net() -> Network {
        let mut n = Network::new("t", (3, 8, 8));
        let p = Conv2dParams::new(3, 8, 3, 1, 1);
        n.add_sequential(Box::new(
            ConvLayer::new("conv1", p, xavier_uniform(8, 27, 5), vec![0.0; 8]).unwrap(),
        ))
        .unwrap();
        n.add_sequential(Box::new(ReluLayer::new("relu1"))).unwrap();
        let p2 = Conv2dParams::new(8, 8, 3, 1, 1);
        n.add_sequential(Box::new(
            ConvLayer::new("conv2", p2, xavier_uniform(8, 72, 6), vec![0.0; 8]).unwrap(),
        ))
        .unwrap();
        n
    }

    #[test]
    fn magnitude_spec_applies_per_layer() {
        let mut n = net();
        let spec = PruneSpec::single("conv1", 0.5).with("conv2", 0.25);
        let achieved = apply_to_network(&mut n, &spec, PruneAlgorithm::Magnitude).unwrap();
        assert_eq!(achieved.len(), 2);
        assert!((n.layer("conv1").unwrap().weight_sparsity() - 0.5).abs() < 0.02);
        assert!((n.layer("conv2").unwrap().weight_sparsity() - 0.25).abs() < 0.02);
    }

    #[test]
    fn filter_pruning_zeroes_whole_rows() {
        let mut n = net();
        let spec = PruneSpec::single("conv1", 0.5);
        apply_to_network(&mut n, &spec, PruneAlgorithm::FilterL1).unwrap();
        let w = n.layer("conv1").unwrap().weights().unwrap().clone();
        let zero_rows = (0..w.rows())
            .filter(|&r| w.row(r).iter().all(|&v| v == 0.0))
            .count();
        assert_eq!(zero_rows, 4);
    }

    #[test]
    fn structured_runs_and_sparsifies() {
        let mut n = net();
        apply_to_network(
            &mut n,
            &PruneSpec::single("conv2", 0.5),
            PruneAlgorithm::Structured,
        )
        .unwrap();
        assert!((n.layer("conv2").unwrap().weight_sparsity() - 0.5).abs() < 0.02);
    }

    #[test]
    fn unknown_or_weightless_layer_errors() {
        let mut n = net();
        assert!(apply_to_network(
            &mut n,
            &PruneSpec::single("nope", 0.5),
            PruneAlgorithm::Magnitude
        )
        .is_err());
        assert!(apply_to_network(
            &mut n,
            &PruneSpec::single("relu1", 0.5),
            PruneAlgorithm::Magnitude
        )
        .is_err());
    }

    #[test]
    fn empty_spec_is_noop() {
        let mut n = net();
        let before = n.layer("conv1").unwrap().weights().unwrap().clone();
        let achieved =
            apply_to_network(&mut n, &PruneSpec::none(), PruneAlgorithm::FilterL1).unwrap();
        assert!(achieved.is_empty());
        assert_eq!(n.layer("conv1").unwrap().weights().unwrap(), &before);
    }
}
