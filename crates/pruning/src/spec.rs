//! Degrees of pruning: per-layer prune ratios (paper symbol `p ∈ P`).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A *degree of pruning*: a mapping from layer name to prune ratio in
/// `[0, 1]`. The set `P` of Table 2 is a collection of `PruneSpec`s; each
/// spec, applied to a CNN, yields one application version with its own
/// accuracy and inference time.
///
/// Layers are kept in a `BTreeMap` so iteration order, equality, display
/// and hashing are deterministic.
///
/// ```
/// use cap_pruning::PruneSpec;
///
/// // The paper's conv1@30% + conv2@50% sweet-spot combination.
/// let spec = PruneSpec::none().with("conv1", 0.3).with("conv2", 0.5);
/// assert_eq!(spec.ratio("conv1"), 0.3);
/// assert_eq!(spec.ratio("conv5"), 0.0); // unlisted layers are unpruned
/// assert_eq!(spec.pruned_layer_count(), 2);
///
/// // Uniform sweeps (Figure 4) prune every listed layer equally; a
/// // ratio of 0 removes the entry, so `none()` round-trips.
/// let uniform = PruneSpec::uniform(&["conv1", "conv2"], 0.0);
/// assert_eq!(uniform, PruneSpec::none());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PruneSpec {
    ratios: BTreeMap<String, f64>,
}

impl PruneSpec {
    /// The unpruned spec (paper's `nonpruned`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Spec pruning a single layer at `ratio`.
    pub fn single(layer: impl Into<String>, ratio: f64) -> Self {
        let mut s = Self::default();
        s.set(layer, ratio);
        s
    }

    /// Spec pruning every listed layer at the same `ratio` (Figure 4's
    /// uniform sweep).
    pub fn uniform<S: AsRef<str>>(layers: &[S], ratio: f64) -> Self {
        let mut s = Self::default();
        for l in layers {
            s.set(l.as_ref(), ratio);
        }
        s
    }

    /// Set one layer's ratio (clamped to `[0, 1]`; 0 removes the entry).
    pub fn set(&mut self, layer: impl Into<String>, ratio: f64) {
        let ratio = ratio.clamp(0.0, 1.0);
        let name = layer.into();
        if ratio == 0.0 {
            self.ratios.remove(&name);
        } else {
            self.ratios.insert(name, ratio);
        }
    }

    /// Builder-style [`Self::set`].
    pub fn with(mut self, layer: impl Into<String>, ratio: f64) -> Self {
        self.set(layer, ratio);
        self
    }

    /// Prune ratio of `layer` (0 when unlisted).
    pub fn ratio(&self, layer: &str) -> f64 {
        self.ratios.get(layer).copied().unwrap_or(0.0)
    }

    /// Iterate `(layer, ratio)` pairs with non-zero ratios, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.ratios.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of pruned layers.
    pub fn pruned_layer_count(&self) -> usize {
        self.ratios.len()
    }

    /// True if nothing is pruned.
    pub fn is_none(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Sum of ratios across pruned layers.
    pub fn total_ratio(&self) -> f64 {
        self.ratios.values().sum()
    }

    /// Largest single-layer ratio (0 when unpruned).
    pub fn max_ratio(&self) -> f64 {
        self.ratios.values().copied().fold(0.0, f64::max)
    }

    /// Merge: take the per-layer maximum of two specs (combining
    /// sweet-spots from multiple layers, §4.3.2).
    pub fn combine(&self, other: &PruneSpec) -> PruneSpec {
        let mut out = self.clone();
        for (l, r) in other.iter() {
            if r > out.ratio(l) {
                out.set(l, r);
            }
        }
        out
    }

    /// Stable short label, e.g. `nonpruned` or `conv1@30+conv2@50`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "nonpruned".to_string();
        }
        self.ratios
            .iter()
            .map(|(l, r)| format!("{l}@{:.0}", r * 100.0))
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl fmt::Display for PruneSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_is_empty() {
        let s = PruneSpec::none();
        assert!(s.is_none());
        assert_eq!(s.label(), "nonpruned");
        assert_eq!(s.ratio("conv1"), 0.0);
    }

    #[test]
    fn set_clamps_and_zero_removes() {
        let mut s = PruneSpec::single("conv1", 1.5);
        assert_eq!(s.ratio("conv1"), 1.0);
        s.set("conv1", 0.0);
        assert!(s.is_none());
        s.set("conv2", -0.3);
        assert!(s.is_none());
    }

    #[test]
    fn uniform_covers_all_layers() {
        let s = PruneSpec::uniform(&["conv1", "conv2", "conv3"], 0.4);
        assert_eq!(s.pruned_layer_count(), 3);
        assert!((s.total_ratio() - 1.2).abs() < 1e-12);
        assert_eq!(s.max_ratio(), 0.4);
    }

    #[test]
    fn combine_takes_per_layer_max() {
        let a = PruneSpec::single("conv1", 0.3).with("conv2", 0.1);
        let b = PruneSpec::single("conv2", 0.5).with("conv3", 0.2);
        let c = a.combine(&b);
        assert_eq!(c.ratio("conv1"), 0.3);
        assert_eq!(c.ratio("conv2"), 0.5);
        assert_eq!(c.ratio("conv3"), 0.2);
    }

    #[test]
    fn label_is_deterministic_and_sorted() {
        let s = PruneSpec::single("conv2", 0.5).with("conv1", 0.3);
        assert_eq!(s.label(), "conv1@30+conv2@50");
        assert_eq!(s.to_string(), s.label());
    }

    #[test]
    fn serde_roundtrip() {
        let s = PruneSpec::single("conv1", 0.25).with("conv5", 0.75);
        let json = serde_json::to_string(&s).unwrap();
        let back: PruneSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    proptest! {
        #[test]
        fn prop_combine_is_commutative_and_idempotent(
            r1 in 0.0f64..1.0, r2 in 0.0f64..1.0, r3 in 0.0f64..1.0
        ) {
            let a = PruneSpec::single("x", r1).with("y", r2);
            let b = PruneSpec::single("y", r3);
            prop_assert_eq!(a.combine(&b), b.combine(&a));
            let ab = a.combine(&b);
            prop_assert_eq!(ab.combine(&ab), ab.clone());
            prop_assert!(ab.max_ratio() >= a.max_ratio().max(b.max_ratio()) - 1e-12);
        }
    }
}
