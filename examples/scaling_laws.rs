//! Scaling laws: the paper's framing made visible. Resource scaling
//! (Amdahl: fixed workload, more instances) hits a serial-fraction wall
//! and multiplies cost; accuracy scaling (pruning) cuts time *and* cost
//! on the same hardware — the third axis the paper adds.
//!
//! ```sh
//! cargo run --release --example scaling_laws
//! ```

use cap_cloud::{fixed_workload_curve, gustafson_speedup};
use cloud_cost_accuracy::prelude::*;

fn main() {
    let profile = caffenet_profile();
    let base_min = profile.base_batched_s_per_image * 50_000.0 / 60.0;
    let price = by_name("p2.xlarge").unwrap().price_per_hour;

    println!("Caffenet, 50 000 inferences, base {base_min:.1} min on 1x p2.xlarge\n");

    // Axis 1: resource scaling under Amdahl (95 % parallel pipeline).
    println!("[resource scaling] Amdahl, 95% parallel fraction:");
    println!(
        "{:>4} {:>10} {:>9} {:>12}",
        "n", "time min", "cost $", "speedup"
    );
    for p in fixed_workload_curve(base_min * 60.0, 0.95, price, 16)
        .iter()
        .filter(|p| [1, 2, 4, 8, 16].contains(&p.n))
    {
        println!(
            "{:>4} {:>10.2} {:>9.3} {:>11.2}x",
            p.n,
            p.time_s / 60.0,
            p.cost_usd,
            base_min * 60.0 / p.time_s
        );
    }
    println!(
        "  (Gustafson view at n=16: {:.1}x more work in the same time)",
        gustafson_speedup(0.95, 16)
    );

    // Axis 2: accuracy scaling via pruning, same single instance.
    println!("\n[accuracy scaling] pruning on the same 1x p2.xlarge:");
    println!(
        "{:<28} {:>10} {:>9} {:>8}",
        "degree of pruning", "time min", "cost $", "top5"
    );
    for (name, spec) in [
        ("nonpruned", PruneSpec::none()),
        ("conv2@50 (sweet spot)", PruneSpec::single("conv2", 0.5)),
        (
            "conv1@30+conv2@50",
            PruneSpec::single("conv1", 0.3).with("conv2", 0.5),
        ),
        ("all-conv sweet spots", profile.all_knees_spec()),
    ] {
        let minutes = profile.batched_s_per_image(&spec) * 50_000.0 / 60.0;
        let cost = cost_usd(price, minutes * 60.0);
        let (_, top5) = profile.accuracy(&spec);
        println!(
            "{:<28} {:>10.2} {:>9.3} {:>7.1}%",
            name,
            minutes,
            cost,
            top5 * 100.0
        );
    }
    println!("\nresource scaling buys time but never cost; accuracy scaling buys both,");
    println!("priced in accuracy — which is exactly what TAR and CAR quantify.");
}
