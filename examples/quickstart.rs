//! Quickstart: prune Caffenet at its sweet spots, run the inference
//! workload on an EC2 GPU instance, and read off time, cost, TAR and CAR.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloud_cost_accuracy::prelude::*;

fn main() {
    // The calibrated Caffenet profile (accuracy + reference timing per
    // degree of pruning).
    let profile = caffenet_profile();

    // Three degrees of pruning from the paper's Figure 8.
    let degrees = [
        ("nonpruned", PruneSpec::none()),
        (
            "conv1-2 (sweet spots)",
            PruneSpec::single("conv1", 0.3).with("conv2", 0.5),
        ),
        ("all-conv (sweet spots)", profile.all_knees_spec()),
    ];

    // One p2.xlarge (1× NVIDIA K80), the paper's measurement instance.
    let instance = by_name("p2.xlarge").expect("catalog entry");
    let config = ResourceConfig::of(instance, 1);
    let w = Workload::paper_inference();

    println!("Caffenet, {} images on 1x p2.xlarge", w.total_images);
    println!(
        "{:<24} {:>9} {:>9} {:>7} {:>7} {:>8} {:>8}",
        "degree of pruning", "time", "cost", "top1", "top5", "TAR", "CAR"
    );
    for (name, spec) in degrees {
        let version = AppVersion::from_profile(&profile, spec);
        let est = simulate(
            &config,
            &version.exec,
            w.total_images,
            w.batch_size,
            Distribution::EqualSplit,
        )
        .expect("non-empty config");
        println!(
            "{:<24} {:>7.1} m {:>8.3} $ {:>6.1}% {:>6.1}% {:>7.1}s {:>7.3}$",
            name,
            est.time_s / 60.0,
            est.cost_usd,
            version.top1 * 100.0,
            version.top5 * 100.0,
            tar(est.time_s, version.top5),
            car(est.cost_usd, version.top5),
        );
    }

    println!();
    println!("Headline: multi-layer sweet-spot pruning cuts time/cost ~40-45%");
    println!("for a ~ one-fifth relative top-5 accuracy drop (80% -> 62%).");
}
