//! Custom networks: build your own trainable CNN with the
//! `SequentialBuilder`, train it, prune it layer by layer, and measure
//! the cost-accuracy trade-off — the workflow a downstream user applies
//! to their *own* application instead of Caffenet/Googlenet.
//!
//! ```sh
//! cargo run --release --example custom_network
//! ```

use cap_cnn::train::{SequentialBuilder, Sgd};
use cloud_cost_accuracy::prelude::*;
use std::time::Instant;

fn main() {
    // A harder synthetic task: 8 classes, heavy noise.
    let data = SyntheticImageNet {
        classes: 8,
        image_shape: (3, 16, 16),
        seed: 4242,
        noise: 0.7,
    };

    // Three conv blocks, built with derived shapes.
    let mut net = SequentialBuilder::new(data.image_shape, 1)
        .conv(8, 3, 1)
        .relu()
        .maxpool(2)
        .conv(12, 3, 1)
        .relu()
        .maxpool(2)
        .conv(12, 3, 1)
        .relu()
        .fc(data.classes)
        .expect("valid geometry");
    println!(
        "built a {}-parameter custom CNN with {} weighted layers",
        net.param_count(),
        net.weighted_layer_indices().len()
    );

    let mut sgd = Sgd::new(0.03, 0.9);
    for epoch in 0..6 {
        let mut loss = 0.0;
        for b in 0..8 {
            let (x, labels) = data.batch(b * 32, 32);
            loss = net.train_batch(&x, &labels, &mut sgd, None).expect("train");
        }
        println!("epoch {epoch}: loss {loss:.3}");
    }

    let (test_x, test_labels) = data.batch(9_000, 128);
    let base = net.evaluate(&test_x, &test_labels).unwrap();
    println!(
        "baseline: top1 {:.1}%, top5 {:.1}%",
        base.top1 * 100.0,
        base.top5 * 100.0
    );

    // Per-layer sensitivity, measured: prune each conv layer alone.
    println!("\nper-layer sensitivity at 70% pruning:");
    let weighted = net.weighted_layer_indices();
    for &idx in &weighted[..weighted.len() - 1] {
        let mut pruned = net.clone();
        prune_magnitude(pruned.layer_mut(idx).unwrap().weights_mut().unwrap(), 0.7).unwrap();
        let r = pruned.evaluate(&test_x, &test_labels).unwrap();
        let t0 = Instant::now();
        pruned.logits(&test_x).unwrap();
        println!(
            "  layer {idx}: top1 {:.1}% (drop {:.1}pp), latency {:.2} ms",
            r.top1 * 100.0,
            (base.top1 - r.top1) * 100.0,
            t0.elapsed().as_secs_f64() * 1000.0
        );
    }
    println!("\nuse the least-sensitive layers' sweet spots, then feed the measured");
    println!("accuracy and timing into cap-core's explorer to pick a cloud configuration.");
}
