//! Sweet-spot finder: sweep each convolution layer's prune ratio and
//! report the region where inference time falls with no accuracy loss
//! (the paper's Observation 1, Figures 6 and 7).
//!
//! ```sh
//! cargo run --release --example sweet_spot_finder [caffenet|googlenet]
//! ```

use cap_pruning::sensitivity::{standard_ratio_grid, sweep_layer};
use cloud_cost_accuracy::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "caffenet".into());
    let profile = match which.as_str() {
        "googlenet" => googlenet_profile(),
        _ => caffenet_profile(),
    };
    // For Googlenet, restrict to the paper's six selected layers.
    let layers: Vec<String> = if profile.name == "googlenet" {
        cap_cnn::models::GOOGLENET_SELECTED_LAYERS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        profile
            .conv_layer_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    };

    let grid = standard_ratio_grid();
    println!(
        "{} sweet-spot regions (tolerance: no accuracy drop)",
        profile.name
    );
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "layer", "last ratio", "top5 there", "time factor"
    );
    for layer in &layers {
        let sweep = sweep_layer(&profile, layer, &grid);
        let ss =
            sweet_spot(&sweep.top5_curve(), &sweep.time_curve(), 1e-9).expect("non-empty sweep");
        println!(
            "{:<22} {:>11.0}% {:>11.1}% {:>13.3}",
            layer,
            ss.last_ratio * 100.0,
            ss.accuracy_at_last * 100.0,
            ss.time_factor_at_last
        );
    }

    // Combine all sweet spots into one degree of pruning (§4.3.2).
    let combined = profile.all_knees_spec();
    let (top1, top5) = profile.accuracy(&combined);
    println!();
    println!(
        "combined {}: time factor {:.3}, top1 {:.1}%, top5 {:.1}%",
        combined.label(),
        profile.batched_time_factor(&combined),
        top1 * 100.0,
        top5 * 100.0
    );
    println!("(combining individually-free sweet spots is NOT free: Observation 3)");
}
