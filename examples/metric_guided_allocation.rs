//! Metric-guided allocation vs exhaustive search: the §4.5.3 complexity
//! story. Both searches pick a degree of pruning and a resource subset
//! under a deadline and budget; the TAR/CAR greedy finds the same
//! best-accuracy answer with polynomially many evaluations while the
//! exhaustive baseline pays `O(2^|G|)`.
//!
//! ```sh
//! cargo run --release --example metric_guided_allocation
//! ```

use cloud_cost_accuracy::prelude::*;

fn main() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let w = 200_000u64;
    let deadline = 4.0 * 3600.0;
    let budget = 60.0;

    println!(
        "{:>4} {:>14} {:>14} {:>10} {:>10} {:>9}",
        "|G|", "greedy evals", "exhaust evals", "grdy acc", "exh acc", "agree"
    );
    for g_size in [4usize, 6, 8, 10, 12] {
        // Pool: alternating p2.xlarge / g3.4xlarge instances.
        let cat = catalog();
        let pool: Vec<InstanceType> = (0..g_size)
            .map(|i| {
                if i % 2 == 0 {
                    cat[0].clone()
                } else {
                    cat[3].clone()
                }
            })
            .collect();

        let greedy = allocate(
            &versions,
            &pool,
            &AllocationRequest {
                w,
                batch: 512,
                deadline_s: deadline,
                budget_usd: budget,
                metric: AccuracyMetric::Top1,
            },
        );
        let exhaustive = exhaustive_search(
            &versions,
            &pool,
            w,
            512,
            deadline,
            budget,
            AccuracyMetric::Top1,
        );
        match (greedy, exhaustive) {
            (Some(g), Some(e)) => {
                let g_acc = versions[g.version_idx].top1;
                println!(
                    "{:>4} {:>14} {:>14} {:>9.1}% {:>9.1}% {:>9}",
                    g_size,
                    g.evaluations,
                    e.evaluations,
                    g_acc * 100.0,
                    e.accuracy * 100.0,
                    if (g_acc - e.accuracy).abs() < 1e-9 {
                        "yes"
                    } else {
                        "NO"
                    }
                );
            }
            _ => println!("{g_size:>4} infeasible under these constraints"),
        }
    }
    println!("\nexhaustive evaluations double with every added resource;");
    println!("the TAR/CAR greedy stays linear in |G| per version.");
}
