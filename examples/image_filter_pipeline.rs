//! Image-filtering pipeline: the paper's motivating scenario (§1) — a
//! social-media platform must screen a day's photo uploads within a
//! deadline and a budget, tolerating "close enough" classifications.
//!
//! Algorithm 1 picks the degree of pruning and the cloud configuration:
//! highest accuracy first, resources greedily by CAR.
//!
//! ```sh
//! cargo run --release --example image_filter_pipeline [uploads] [deadline_h] [budget_usd]
//! ```

use cloud_cost_accuracy::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let uploads: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000); // a modest platform's daily photo volume
    let deadline_h: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12.0);
    let budget: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500.0);

    println!("screening {uploads} uploads within {deadline_h} h for <= ${budget}");

    // Application versions: the 60-degree Caffenet grid.
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);

    // Resource pool: up to 4 instances of each catalog type.
    let mut pool: Vec<InstanceType> = Vec::new();
    for inst in catalog() {
        for _ in 0..4 {
            pool.push(inst.clone());
        }
    }

    let request = AllocationRequest {
        w: uploads,
        batch: 512,
        deadline_s: deadline_h * 3600.0,
        budget_usd: budget,
        metric: AccuracyMetric::Top1,
    };

    match allocate(&versions, &pool, &request) {
        Some(result) => {
            let v = &versions[result.version_idx];
            println!(
                "\nallocation found after {} evaluations:",
                result.evaluations
            );
            println!("  degree of pruning : {}", v.label());
            println!(
                "  accuracy          : top1 {:.1}%, top5 {:.1}%",
                v.top1 * 100.0,
                v.top5 * 100.0
            );
            println!("  resources         : {}", result.config.label());
            println!(
                "  predicted time    : {:.2} h (deadline {deadline_h} h)",
                result.time_s / 3600.0
            );
            println!(
                "  predicted cost    : ${:.2} (budget ${budget})",
                result.cost_usd
            );
            println!(
                "  TAR {:.1} s/acc, CAR {:.3} $/acc",
                tar(result.time_s, v.top1),
                car(result.cost_usd, v.top1)
            );
        }
        None => {
            println!("\nno feasible allocation — relax the deadline or budget,");
            println!("or allow deeper pruning (lower accuracy floor).");
        }
    }
}
