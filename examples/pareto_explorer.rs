//! Pareto explorer: reproduce the Figure 9/10 experiment — evaluate 60
//! pruned Caffenet versions across p2 resource configurations and batch
//! sizes for a million-image workload, filter by a 10-hour deadline and
//! a $300 budget, and extract the time-accuracy and cost-accuracy
//! Pareto frontiers.
//!
//! ```sh
//! cargo run --release --example pareto_explorer
//! ```

use cloud_cost_accuracy::prelude::*;

fn main() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    let w = Workload::paper_million();
    println!(
        "space: {} versions x {} configs x 3 batch settings = {} candidates",
        versions.len(),
        configs.len(),
        versions.len() * configs.len() * 3
    );

    let evals = evaluate_grid(&versions, &configs, w.total_images, &[48, 160, 512]);

    // Figure 9: 10-hour deadline, time-accuracy plane.
    let deadline = 10.0 * 3600.0;
    let feasible_t = feasible_by_deadline(&evals, deadline);
    println!(
        "\n[fig9] {} of {} candidates meet the 10 h deadline",
        feasible_t.len(),
        evals.len()
    );
    for metric in [AccuracyMetric::Top1, AccuracyMetric::Top5] {
        let front = frontier_indices(&feasible_t, metric, Objective::Time);
        println!(
            "  {metric:?} time-accuracy Pareto frontier ({} points):",
            front.len()
        );
        for &i in &front {
            let e = &feasible_t[i];
            println!(
                "    acc {:>5.1}%  time {:>5.2} h  [{} on {} @b{}]",
                e.accuracy(metric) * 100.0,
                e.time_s / 3600.0,
                e.version_label,
                e.config_label,
                e.batch
            );
        }
    }
    if let Some((best, worst, saving)) =
        savings_at_best_accuracy(&feasible_t, AccuracyMetric::Top1, Objective::Time, 1e-9)
    {
        println!(
            "  highest-accuracy point: Pareto pick {:.2} h vs worst same-accuracy {:.2} h -> {:.0}% time saved",
            best.time_s / 3600.0,
            worst.time_s / 3600.0,
            saving * 100.0
        );
    }

    // Figure 10: $300 budget, cost-accuracy plane.
    let feasible_c = feasible_by_budget(&evals, 300.0);
    println!(
        "\n[fig10] {} of {} candidates fit the $300 budget",
        feasible_c.len(),
        evals.len()
    );
    let front = frontier_indices(&feasible_c, AccuracyMetric::Top1, Objective::Cost);
    println!(
        "  Top1 cost-accuracy Pareto frontier ({} points):",
        front.len()
    );
    for &i in &front {
        let e = &feasible_c[i];
        println!(
            "    acc {:>5.1}%  cost ${:>6.2}  [{} on {} @b{}]",
            e.top1 * 100.0,
            e.cost_usd,
            e.version_label,
            e.config_label,
            e.batch
        );
    }
    if let Some((best, worst, saving)) =
        savings_at_best_accuracy(&feasible_c, AccuracyMetric::Top1, Objective::Cost, 1e-9)
    {
        println!(
            "  highest-accuracy point: Pareto pick ${:.2} vs worst same-accuracy ${:.2} -> {:.0}% cost saved",
            best.cost_usd, worst.cost_usd, saving * 100.0
        );
    }
}
