//! Train–prune–measure: the end-to-end *measured* counterpart of the
//! calibrated profiles. Trains TinyNet on synthetic images, prunes its
//! convolution layers at increasing ratios (with brief fine-tuning), and
//! measures — not models — the accuracy curve and the sparse-kernel
//! speedup. This is the paper's methodology executed for real at laptop
//! scale.
//!
//! ```sh
//! cargo run --release --example train_prune_measure
//! ```

use cap_pruning::magnitude::sparsity_mask;
use cloud_cost_accuracy::prelude::*;
use std::time::Instant;

fn main() {
    let data = SyntheticImageNet::tiny(2024);
    let mut net = TinyNet::new(data.image_shape, 8, 12, data.classes, 7).expect("valid shape");
    let mut sgd = Sgd::new(0.03, 0.9);

    // Train on 40 batches of 32 images.
    println!(
        "training TinyNet on synthetic {}-class images...",
        data.classes
    );
    let mut loss = f32::NAN;
    for epoch in 0..5 {
        for b in 0..8 {
            let (x, labels) = data.batch(b * 32, 32);
            loss = net
                .train_batch(&x, &labels, &mut sgd, None)
                .expect("train step");
        }
        println!("  epoch {epoch}: loss {loss:.3}");
    }

    // Held-out evaluation set (indices beyond the training range).
    let (test_x, test_labels) = data.batch(10_000, 128);
    let base = net.evaluate(&test_x, &test_labels).expect("eval");
    println!(
        "baseline: top1 {:.1}%, top5 {:.1}%",
        base.top1 * 100.0,
        base.top5 * 100.0
    );

    println!(
        "\n{:>6} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "ratio", "sparsity", "top1", "top5", "dense ms", "sparse ms"
    );
    for ratio in [0.0, 0.3, 0.5, 0.7, 0.9] {
        // Fresh copy of the trained weights each round.
        let mut pruned = TinyNet::new(data.image_shape, 8, 12, data.classes, 7).unwrap();
        pruned.conv1_w = net.conv1_w.clone();
        pruned.conv1_b = net.conv1_b.clone();
        pruned.conv2_w = net.conv2_w.clone();
        pruned.conv2_b = net.conv2_b.clone();
        pruned.fc_w = net.fc_w.clone();
        pruned.fc_b = net.fc_b.clone();

        prune_magnitude(&mut pruned.conv1_w, ratio).unwrap();
        prune_magnitude(&mut pruned.conv2_w, ratio).unwrap();
        // Brief masked fine-tuning (pruned weights stay zero).
        let m1 = sparsity_mask(&pruned.conv1_w);
        let m2 = sparsity_mask(&pruned.conv2_w);
        let mut ft = Sgd::new(0.01, 0.9);
        for b in 0..4 {
            let (x, labels) = data.batch(b * 32, 32);
            pruned
                .train_batch(&x, &labels, &mut ft, Some((&m1, &m2)))
                .unwrap();
        }

        let report = pruned.evaluate(&test_x, &test_labels).unwrap();
        // Time both execution paths on the same batch.
        let t0 = Instant::now();
        let dense_logits = pruned.logits(&test_x).unwrap();
        let dense_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let sparse_logits = pruned.logits_sparse(&test_x).unwrap();
        let sparse_ms = t1.elapsed().as_secs_f64() * 1000.0;
        assert!(
            dense_logits.max_abs_diff(&sparse_logits).unwrap() < 1e-2,
            "sparse and dense paths must agree"
        );
        println!(
            "{:>5.0}% {:>9.1}% {:>7.1}% {:>7.1}% {:>11.2} {:>11.2}",
            ratio * 100.0,
            pruned.conv_sparsity() * 100.0,
            report.top1 * 100.0,
            report.top5 * 100.0,
            dense_ms,
            sparse_ms
        );
    }
    println!("\nsweet-spot shape: accuracy holds at moderate ratios, falls at 90%;");
    println!("sparse kernels pull ahead as sparsity rises (break-even ~40-50%).");
}
