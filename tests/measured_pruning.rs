//! Measured (not modelled) pruning behaviour: train TinyNet on synthetic
//! data, prune for real, and verify the paper's qualitative claims hold
//! on genuinely executed CNNs.

use cap_pruning::magnitude::sparsity_mask;
use cloud_cost_accuracy::prelude::*;

fn trained_tinynet(data: &SyntheticImageNet) -> TinyNet {
    let mut net = TinyNet::new(data.image_shape, 6, 10, data.classes, 99).unwrap();
    let mut sgd = Sgd::new(0.03, 0.9);
    for _epoch in 0..4 {
        for b in 0..6 {
            let (x, labels) = data.batch(b * 24, 24);
            net.train_batch(&x, &labels, &mut sgd, None).unwrap();
        }
    }
    net
}

fn clone_weights(from: &TinyNet, data: &SyntheticImageNet) -> TinyNet {
    let mut to = TinyNet::new(data.image_shape, 6, 10, data.classes, 99).unwrap();
    to.conv1_w = from.conv1_w.clone();
    to.conv1_b = from.conv1_b.clone();
    to.conv2_w = from.conv2_w.clone();
    to.conv2_b = from.conv2_b.clone();
    to.fc_w = from.fc_w.clone();
    to.fc_b = from.fc_b.clone();
    to
}

#[test]
fn trained_model_learns_and_moderate_pruning_is_nearly_free() {
    let data = SyntheticImageNet::tiny(31);
    let net = trained_tinynet(&data);
    let (test_x, test_labels) = data.batch(5_000, 96);
    let base = net.evaluate(&test_x, &test_labels).unwrap();
    assert!(base.top1 > 0.5, "baseline top1 {}", base.top1);

    // Sweet-spot shape: 30 % magnitude pruning costs little accuracy.
    let mut light = clone_weights(&net, &data);
    prune_magnitude(&mut light.conv1_w, 0.3).unwrap();
    prune_magnitude(&mut light.conv2_w, 0.3).unwrap();
    let light_report = light.evaluate(&test_x, &test_labels).unwrap();
    assert!(
        light_report.top1 >= base.top1 - 0.15,
        "30% pruning dropped top1 from {} to {}",
        base.top1,
        light_report.top1
    );

    // Heavy pruning (95 %) destroys accuracy — there is a cliff.
    let mut heavy = clone_weights(&net, &data);
    prune_magnitude(&mut heavy.conv1_w, 0.95).unwrap();
    prune_magnitude(&mut heavy.conv2_w, 0.95).unwrap();
    let heavy_report = heavy.evaluate(&test_x, &test_labels).unwrap();
    assert!(
        heavy_report.top1 < base.top1,
        "95% pruning should cost accuracy: {} vs {}",
        heavy_report.top1,
        base.top1
    );
}

#[test]
fn fine_tuning_recovers_some_pruned_accuracy() {
    let data = SyntheticImageNet::tiny(47);
    let net = trained_tinynet(&data);
    let (test_x, test_labels) = data.batch(5_000, 96);

    let mut pruned = clone_weights(&net, &data);
    prune_magnitude(&mut pruned.conv1_w, 0.6).unwrap();
    prune_magnitude(&mut pruned.conv2_w, 0.6).unwrap();
    let before = pruned.evaluate(&test_x, &test_labels).unwrap();

    let m1 = sparsity_mask(&pruned.conv1_w);
    let m2 = sparsity_mask(&pruned.conv2_w);
    let sparsity_before = pruned.conv_sparsity();
    let mut sgd = Sgd::new(0.01, 0.9);
    for b in 0..6 {
        let (x, labels) = data.batch(b * 24, 24);
        pruned
            .train_batch(&x, &labels, &mut sgd, Some((&m1, &m2)))
            .unwrap();
    }
    let after = pruned.evaluate(&test_x, &test_labels).unwrap();
    // Sparsity is preserved by the mask and accuracy does not regress.
    assert!(pruned.conv_sparsity() >= sparsity_before - 1e-9);
    assert!(after.top1 >= before.top1 - 0.05);
}

#[test]
fn sparse_execution_path_is_numerically_faithful() {
    let data = SyntheticImageNet::tiny(53);
    let net = trained_tinynet(&data);
    let mut pruned = clone_weights(&net, &data);
    prune_magnitude(&mut pruned.conv1_w, 0.7).unwrap();
    prune_magnitude(&mut pruned.conv2_w, 0.7).unwrap();
    let (x, _) = data.batch(8_000, 32);
    let dense = pruned.logits(&x).unwrap();
    let sparse = pruned.logits_sparse(&x).unwrap();
    assert!(dense.max_abs_diff(&sparse).unwrap() < 1e-2);
}

#[test]
fn filter_pruning_on_real_caffenet_reduces_nnz_monotonically() {
    let mut prev_nnz = usize::MAX;
    for ratio in [0.2, 0.5, 0.8] {
        let mut net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 1 }).unwrap();
        apply_to_network(
            &mut net,
            &PruneSpec::single("conv3", ratio),
            PruneAlgorithm::FilterL1,
        )
        .unwrap();
        let nnz = net.layer("conv3").unwrap().weights().unwrap().nnz(0.0);
        assert!(nnz < prev_nnz, "ratio {ratio}: nnz {nnz}");
        prev_nnz = nnz;
    }
}

#[test]
fn all_three_algorithms_hit_requested_sparsity_on_googlenet_layer() {
    for alg in [
        PruneAlgorithm::Magnitude,
        PruneAlgorithm::FilterL1,
        PruneAlgorithm::Structured,
    ] {
        let mut net = googlenet(WeightInit::Xavier { seed: 9 }).unwrap();
        apply_to_network(&mut net, &PruneSpec::single("inception-3a-3x3", 0.5), alg).unwrap();
        let s = net.layer("inception-3a-3x3").unwrap().weight_sparsity();
        assert!((s - 0.5).abs() < 0.05, "{alg:?}: sparsity {s}");
    }
}
