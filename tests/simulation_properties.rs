//! Cross-crate property tests: invariants of the whole pipeline checked
//! over randomized prune specs, workloads and configuration spaces.

use cloud_cost_accuracy::prelude::*;
use proptest::prelude::*;

fn arbitrary_spec() -> impl Strategy<Value = PruneSpec> {
    // Random ratios over the five Caffenet conv layers.
    proptest::collection::vec(0.0f64..0.9, 5).prop_map(|rs| {
        let mut s = PruneSpec::none();
        for (i, r) in rs.into_iter().enumerate() {
            s.set(format!("conv{}", i + 1), r);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruning never increases accuracy and never increases time.
    #[test]
    fn pruning_dominates_in_the_right_direction(spec in arbitrary_spec()) {
        let p = caffenet_profile();
        let (t1, t5) = p.accuracy(&spec);
        prop_assert!(t1 <= p.base_top1 + 1e-12);
        prop_assert!(t5 <= p.base_top5 + 1e-12);
        prop_assert!((0.0..=1.0).contains(&t1));
        prop_assert!((0.0..=1.0).contains(&t5));
        prop_assert!(p.batched_time_factor(&spec) <= 1.0 + 1e-12);
        prop_assert!(p.single_time_factor(&spec) <= 1.0 + 1e-12);
    }

    /// Simulated time scales linearly with workload; cost with time.
    #[test]
    fn workload_linearity(w in 10_000u64..500_000, spec in arbitrary_spec()) {
        let p = caffenet_profile();
        let v = AppVersion::from_profile(&p, spec);
        let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        let one = simulate(&cfg, &v.exec, w, 512, Distribution::EqualSplit).unwrap();
        let two = simulate(&cfg, &v.exec, 2 * w, 512, Distribution::EqualSplit).unwrap();
        prop_assert!((two.time_s / one.time_s - 2.0).abs() < 0.01);
        prop_assert!(two.cost_usd >= one.cost_usd);
    }

    /// TAR and CAR rank same-accuracy candidates identically to raw
    /// time and cost.
    #[test]
    fn tar_car_rank_consistency(w in 50_000u64..200_000, spec in arbitrary_spec()) {
        let p = caffenet_profile();
        let v = AppVersion::from_profile(&p, spec);
        prop_assume!(v.top1 > 0.01);
        let small = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
        let big = ResourceConfig::of(by_name("p2.8xlarge").unwrap(), 1);
        let es = simulate(&small, &v.exec, w, 512, Distribution::EqualSplit).unwrap();
        let eb = simulate(&big, &v.exec, w, 512, Distribution::EqualSplit).unwrap();
        // Same version on both: TAR ordering == time ordering.
        prop_assert_eq!(
            tar(es.time_s, v.top1) < tar(eb.time_s, v.top1),
            es.time_s < eb.time_s
        );
        prop_assert_eq!(
            car(es.cost_usd, v.top1) < car(eb.cost_usd, v.top1),
            es.cost_usd < eb.cost_usd
        );
    }

    /// The Pareto frontier of a random evaluated set is exactly the set
    /// of candidates no other candidate dominates.
    #[test]
    fn frontier_equals_nondominated_set(
        seed_specs in proptest::collection::vec(arbitrary_spec(), 2..8)
    ) {
        let p = caffenet_profile();
        let versions: Vec<AppVersion> = seed_specs
            .into_iter()
            .map(|s| AppVersion::from_profile(&p, s))
            .collect();
        let cat: Vec<InstanceType> = catalog().into_iter().take(2).collect();
        let configs = enumerate_configs(&cat, 1);
        let evals = evaluate_all(&versions, &configs, 100_000, 512);
        let front: std::collections::HashSet<usize> =
            frontier_indices(&evals, AccuracyMetric::Top1, Objective::Time)
                .into_iter()
                .collect();
        for (i, e) in evals.iter().enumerate() {
            let dominated = evals.iter().enumerate().any(|(j, o)| {
                j != i
                    && o.top1 >= e.top1
                    && o.time_s <= e.time_s
                    && (o.top1 > e.top1 || o.time_s < e.time_s)
            });
            if front.contains(&i) {
                prop_assert!(!dominated, "frontier member {i} is dominated");
            } else if !dominated {
                // Non-dominated but excluded: must be an exact duplicate
                // of a frontier member.
                let dup = front.iter().any(|&f| {
                    evals[f].top1 == e.top1 && evals[f].time_s == e.time_s
                });
                prop_assert!(dup, "non-dominated {i} missing from frontier");
            }
        }
    }

    /// Algorithm 1's result, when it exists, always satisfies both
    /// constraints, and loosening constraints never loses feasibility.
    #[test]
    fn allocation_feasibility_monotone(
        deadline_h in 0.5f64..20.0,
        budget in 1.0f64..200.0,
    ) {
        let p = caffenet_profile();
        let versions = caffenet_version_grid(&p);
        let pool: Vec<InstanceType> = catalog()
            .into_iter()
            .flat_map(|i| std::iter::repeat_n(i, 2))
            .collect();
        let req = |d: f64, b: f64| AllocationRequest {
            w: 500_000,
            batch: 512,
            deadline_s: d * 3600.0,
            budget_usd: b,
            metric: AccuracyMetric::Top1,
        };
        let tight = allocate(&versions, &pool, &req(deadline_h, budget));
        if let Some(r) = &tight {
            prop_assert!(r.time_s <= deadline_h * 3600.0);
            prop_assert!(r.cost_usd <= budget);
            // Loosened constraints stay feasible with at least the accuracy.
            let loose = allocate(&versions, &pool, &req(deadline_h * 2.0, budget * 2.0))
                .expect("loosening keeps feasibility");
            prop_assert!(
                versions[loose.version_idx].top1 + 1e-12 >= versions[r.version_idx].top1
            );
        }
    }
}
