//! Cross-crate integration: the full paper pipeline from degrees of
//! pruning through cloud simulation to Pareto selection and allocation.

use cloud_cost_accuracy::prelude::*;

#[test]
fn pipeline_profile_to_allocation_is_consistent() {
    // Stage 1: characterize — versions from the calibrated profile.
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    assert_eq!(versions.len(), 60);

    // Stage 2: measurements — evaluate over the p2 configuration space.
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    let evals = evaluate_all(&versions, &configs, 1_000_000, 512);
    assert_eq!(evals.len(), versions.len() * configs.len());

    // Stage 3: Pareto filter under the time deadline.
    let feasible = feasible_by_deadline(&evals, 10.0 * 3600.0);
    let front = frontier_indices(&feasible, AccuracyMetric::Top1, Objective::Time);
    assert!(!front.is_empty());

    // Every frontier point must be feasible and non-dominated within the set.
    for &i in &front {
        let e = &feasible[i];
        assert!(e.time_s <= 10.0 * 3600.0);
        for other in &feasible {
            let dominates = other.top1 >= e.top1
                && other.time_s <= e.time_s
                && (other.top1 > e.top1 || other.time_s < e.time_s);
            assert!(
                !dominates,
                "frontier point dominated by {}",
                other.config_label
            );
        }
    }

    // Stage 4: Algorithm 1 finds a configuration meeting both constraints
    // whose accuracy equals the best frontier accuracy under the same
    // constraints (cost bound generous here).
    let pool: Vec<InstanceType> = catalog()
        .into_iter()
        .flat_map(|i| std::iter::repeat_n(i, 3))
        .collect();
    let request = AllocationRequest {
        w: 1_000_000,
        batch: 512,
        deadline_s: 10.0 * 3600.0,
        budget_usd: 1_000.0,
        metric: AccuracyMetric::Top1,
    };
    let alloc = allocate(&versions, &pool, &request).expect("feasible allocation");
    let best_front_acc = feasible[front[0]].top1;
    assert!(
        versions[alloc.version_idx].top1 >= best_front_acc - 1e-9,
        "greedy {} < frontier {}",
        versions[alloc.version_idx].top1,
        best_front_acc
    );
}

#[test]
fn tar_car_ordering_predicts_pareto_membership() {
    // For a fixed accuracy level, the candidate with the minimum
    // time (= minimum TAR) is the one on the time-accuracy frontier.
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 2);
    let evals = evaluate_all(&versions, &configs, 500_000, 512);
    let front = frontier_indices(&evals, AccuracyMetric::Top5, Objective::Time);
    let front_set: std::collections::HashSet<usize> = front.iter().copied().collect();

    // Group by accuracy (bit-exact), find each group's min-TAR candidate.
    use std::collections::HashMap;
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, e) in evals.iter().enumerate() {
        groups.entry(e.top5.to_bits()).or_default().push(i);
    }
    for (_, idxs) in groups {
        let min_tar_idx = *idxs
            .iter()
            .min_by(|&&a, &&b| {
                evals[a]
                    .tar(AccuracyMetric::Top5)
                    .partial_cmp(&evals[b].tar(AccuracyMetric::Top5))
                    .unwrap()
            })
            .unwrap();
        // If any member of this accuracy group is on the frontier, the
        // min-TAR member must be the frontier one.
        if idxs.iter().any(|i| front_set.contains(i)) {
            assert!(
                front_set.contains(&min_tar_idx)
                    || evals.iter().any(|o| o.top5 == evals[min_tar_idx].top5
                        && o.time_s == evals[min_tar_idx].time_s),
                "min-TAR candidate missing from frontier"
            );
        }
    }
}

#[test]
fn measurement_harness_composes_with_simulation() {
    // §3.3 protocol around the simulator: jittered min-of-3 stays within
    // the jitter band of the clean model value.
    let profile = caffenet_profile();
    let v = AppVersion::from_profile(&profile, PruneSpec::none());
    let cfg = ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1);
    let clean = simulate(&cfg, &v.exec, 50_000, 512, Distribution::EqualSplit)
        .unwrap()
        .time_s;
    let harness = MeasurementHarness::paper_protocol(11);
    let measured = harness.measure(1, clean);
    assert!(measured >= clean && measured <= clean * 1.08);
}

#[test]
fn real_network_pruning_changes_real_outputs() {
    // Apply a PruneSpec to the actual Caffenet weights and check the
    // layer sparsity took effect and the network still runs.
    use cap_tensor::Tensor4;
    let mut net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 3 }).unwrap();
    let spec = PruneSpec::single("conv1", 0.3).with("conv2", 0.5);
    let achieved = apply_to_network(&mut net, &spec, PruneAlgorithm::FilterL1).unwrap();
    assert_eq!(achieved.len(), 2);
    assert!((net.layer("conv1").unwrap().weight_sparsity() - 0.3).abs() < 0.05);
    assert!((net.layer("conv2").unwrap().weight_sparsity() - 0.5).abs() < 0.05);
    let x = Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
        ((c + h + w) % 11) as f32 / 11.0 - 0.5
    });
    let y = net.forward(&x).unwrap();
    assert_eq!(y.shape(), (1, 1000, 1, 1));
    let s: f32 = y.image(0).iter().sum();
    assert!((s - 1.0).abs() < 1e-3, "softmax output sums to 1");
}
