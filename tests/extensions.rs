//! Integration tests of the extension surface: quantization, weight
//! sharing, gradual schedules, what-if queries, spec search, and the
//! joint 3-objective frontier — all through the public facade.

use cap_pruning::PruneSchedule;
use cloud_cost_accuracy::prelude::*;

#[test]
fn quantization_and_sharing_compose_with_real_network() {
    use cap_pruning::{quantize_uniform, share_weights};
    let mut net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 5 }).unwrap();
    // Quantize conv3 to 8 bits and weight-share conv4 into 32 clusters.
    let mut w3 = net.layer("conv3").unwrap().weights().unwrap().clone();
    let q = quantize_uniform(&mut w3, 8).unwrap();
    assert!(q.rms_error < 1e-3);
    net.set_layer_weights("conv3", w3).unwrap();

    let mut w4 = net.layer("conv4").unwrap().weights().unwrap().clone();
    let s = share_weights(&mut w4, 32).unwrap();
    assert!(s.clusters_used <= 32);
    net.set_layer_weights("conv4", w4).unwrap();

    // The network still runs and classifies.
    let x = cap_tensor::Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
        ((c + h * 2 + w) % 13) as f32 / 13.0 - 0.5
    });
    let y = net.forward(&x).unwrap();
    let total: f32 = y.image(0).iter().sum();
    assert!((total - 1.0).abs() < 1e-3);
}

#[test]
fn gradual_schedule_reaches_target_with_fine_tuning() {
    use cap_pruning::magnitude::sparsity_mask;
    let data = SyntheticImageNet::tiny(88);
    let mut net = TinyNet::new(data.image_shape, 6, 8, data.classes, 4).unwrap();
    let mut sgd = Sgd::new(0.03, 0.9);
    for b in 0..10 {
        let (x, labels) = data.batch(b * 24, 24);
        net.train_batch(&x, &labels, &mut sgd, None).unwrap();
    }
    let schedule = PruneSchedule::cubic(0.0, 0.8, 4);
    for target in schedule.iter() {
        prune_magnitude(&mut net.conv1_w, target).unwrap();
        prune_magnitude(&mut net.conv2_w, target).unwrap();
        let m1 = sparsity_mask(&net.conv1_w);
        let m2 = sparsity_mask(&net.conv2_w);
        let mut ft = Sgd::new(0.01, 0.9);
        for b in 0..3 {
            let (x, labels) = data.batch(b * 24, 24);
            net.train_batch(&x, &labels, &mut ft, Some((&m1, &m2)))
                .unwrap();
        }
    }
    assert!(
        (net.conv_sparsity() - 0.8).abs() < 0.02,
        "sparsity {}",
        net.conv_sparsity()
    );
}

#[test]
fn whatif_answers_agree_with_algorithm1() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 2);
    let evals = evaluate_all(&versions, &configs, 500_000, 512);

    let deadline = 3.0 * 3600.0;
    let budget = 20.0;
    let exact = cap_core::max_accuracy_within(&evals, AccuracyMetric::Top1, deadline, budget)
        .expect("feasible");
    // Algorithm 1 over the same resource pool reaches the same accuracy.
    let pool: Vec<InstanceType> = p2
        .iter()
        .flat_map(|i| std::iter::repeat_n(i.clone(), 2))
        .collect();
    let alloc = allocate(
        &versions,
        &pool,
        &AllocationRequest {
            w: 500_000,
            batch: 512,
            deadline_s: deadline,
            budget_usd: budget,
            metric: AccuracyMetric::Top1,
        },
    )
    .expect("feasible");
    assert!(
        (versions[alloc.version_idx].top1 - exact.accuracy).abs() < 1e-9,
        "greedy {} vs exact {}",
        versions[alloc.version_idx].top1,
        exact.accuracy
    );
}

#[test]
fn spec_search_result_consistent_with_profile() {
    let profile = caffenet_profile();
    let r = cap_core::min_time_spec(&profile, cap_core::Floor::Top5(0.70)).unwrap();
    let (t1, t5) = profile.accuracy(&r.spec);
    assert_eq!((t1, t5), (r.top1, r.top5));
    assert!((profile.batched_time_factor(&r.spec) - r.time_factor).abs() < 1e-12);
    assert!(r.top5 + 1e-9 >= 0.70);
}

#[test]
fn tri_frontier_never_larger_than_candidate_set_and_contains_2d_bests() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 2);
    let evals = evaluate_all(&versions, &configs, 500_000, 512);
    let tri = cap_core::explorer::tri_frontier_indices(&evals, AccuracyMetric::Top1);
    assert!(!tri.is_empty());
    assert!(tri.len() <= evals.len());
    // The min-cost candidate at the max accuracy must be on the joint frontier.
    let best = cap_core::min_cost_for_accuracy(
        &evals,
        AccuracyMetric::Top1,
        evals.iter().map(|e| e.top1).fold(0.0, f64::max),
    )
    .unwrap();
    let coords: Vec<(f64, f64, f64)> = tri
        .iter()
        .map(|&i| (evals[i].top1, evals[i].time_s, evals[i].cost_usd))
        .collect();
    assert!(
        coords
            .iter()
            .any(|&(a, _, c)| (a - best.accuracy).abs() < 1e-12 && c <= best.cost_usd + 1e-9),
        "min-cost best-accuracy candidate missing from joint frontier"
    );
}

#[test]
fn billing_model_changes_short_job_costs_only() {
    use cap_cloud::{cost_usd_with, BillingModel};
    // Short job: per-hour billing is much worse.
    let short = 120.0;
    assert!(
        cost_usd_with(BillingModel::PerHour, 0.9, short)
            > 5.0 * cost_usd_with(BillingModel::PerSecond, 0.9, short)
    );
    // Long job at an exact hour boundary: identical.
    let exact = 2.0 * 3600.0;
    assert!(
        (cost_usd_with(BillingModel::PerHour, 0.9, exact)
            - cost_usd_with(BillingModel::PerSecond, 0.9, exact))
        .abs()
            < 1e-9
    );
}
