//! Coverage for framework paths not central to the headline experiments:
//! timing records, batched inference over the big models, profile and
//! record serialization, and scaling-law baselines.

use cloud_cost_accuracy::prelude::*;

#[test]
fn caffenet_timed_forward_record_is_complete() {
    use cap_tensor::Tensor4;
    let net = caffenet(WeightInit::Gaussian { std: 0.01, seed: 2 }).unwrap();
    let x = Tensor4::from_fn(1, 3, 224, 224, |_, c, h, w| {
        ((c * 5 + h + w * 2) % 19) as f32 / 19.0 - 0.5
    });
    let record = net.forward_timed(&x).unwrap();
    // Every layer appears exactly once, in prototxt order.
    let names: Vec<&str> = record.timings.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names.len(), net.len());
    assert_eq!(names.first(), Some(&"conv1"));
    assert_eq!(names.last(), Some(&"prob"));
    assert!(record.total_time().as_nanos() > 0);
}

#[test]
fn batched_inference_runner_on_tinynet_matches_direct_logits() {
    use cap_cnn::layer::{ConvLayer, PoolLayer, PoolMode, ReluLayer, SoftmaxLayer};
    use cap_cnn::run_batched;
    use cap_cnn::Network;
    use cap_tensor::{init::xavier_uniform, Conv2dParams};

    // Build an inference Network (not the trainable TinyNet) and check
    // the chunked runner agrees with a single whole-batch forward.
    let mut net = Network::new("t", (3, 8, 8));
    net.add_sequential(Box::new(
        ConvLayer::new(
            "c1",
            Conv2dParams::new(3, 5, 3, 1, 2),
            xavier_uniform(5, 27, 8),
            vec![0.0; 5],
        )
        .unwrap(),
    ))
    .unwrap();
    net.add_sequential(Box::new(ReluLayer::new("r"))).unwrap();
    net.add_sequential(Box::new(PoolLayer::new("p", PoolMode::Avg, 4, 0, 4)))
        .unwrap();
    net.add_sequential(Box::new(SoftmaxLayer::new("prob")))
        .unwrap();

    let data = SyntheticImageNet {
        classes: 5,
        image_shape: (3, 8, 8),
        seed: 3,
        noise: 0.2,
    };
    let (imgs, _) = data.batch(0, 13);
    // Calibrate so the batching-invariance contract holds under an
    // int8 precision leg too: uncalibrated int8 falls back to
    // per-batch activation scales, which depend on chunk composition.
    net.calibrate(&imgs, cap_tensor::CalibrationMethod::MaxAbs)
        .unwrap();
    let (chunked, report) = run_batched(&net, &imgs, 4).unwrap();
    let whole = net.forward(&imgs).unwrap();
    assert_eq!(chunked.len(), 13);
    assert_eq!(report.images, 13);
    for (i, probs) in chunked.iter().enumerate() {
        for (a, b) in probs.iter().zip(whole.image(i).iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }
}

#[test]
fn app_profiles_serialize_and_survive_roundtrip() {
    for profile in [caffenet_profile(), googlenet_profile()] {
        let json = serde_json::to_string(&profile).unwrap();
        let back: AppProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, profile.name);
        assert_eq!(back.layers.len(), profile.layers.len());
        // Behavior-preserving: same accuracy/time for a probe spec.
        let spec = profile.uniform_spec(0.5);
        assert_eq!(back.accuracy(&spec), profile.accuracy(&spec));
        assert_eq!(
            back.batched_time_factor(&spec),
            profile.batched_time_factor(&spec)
        );
    }
}

#[test]
fn scaling_laws_bound_the_accuracy_scaling_story() {
    use cap_cloud::{amdahl_speedup, fixed_workload_curve};
    // Resource scaling a 95%-parallel inference job: Amdahl caps the
    // speedup at 20x no matter the spend...
    assert!(amdahl_speedup(0.95, 1024) < 20.0);
    let curve = fixed_workload_curve(19.0 * 60.0, 0.95, 0.9, 32);
    let best = curve.iter().map(|p| p.time_s).fold(f64::INFINITY, f64::min);
    assert!(best > 19.0 * 60.0 / 20.0);
    // ...while accuracy scaling (all-conv sweet spots) cuts ~42% of time
    // at constant instance count and hence constant-ish cost.
    let p = caffenet_profile();
    let factor = p.batched_time_factor(&p.all_knees_spec());
    assert!(factor < 0.60);
}

#[test]
fn evaluated_config_serializes_for_downstream_tooling() {
    let profile = caffenet_profile();
    let versions = vec![AppVersion::from_profile(&profile, PruneSpec::none())];
    let configs = vec![ResourceConfig::of(by_name("p2.xlarge").unwrap(), 1)];
    let evals = evaluate_all(&versions, &configs, 50_000, 512);
    let json = serde_json::to_string(&evals).unwrap();
    let back: Vec<EvaluatedConfig> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 1);
    assert_eq!(back[0].config_label, evals[0].config_label);
    assert_eq!(back[0].time_s, evals[0].time_s);
}

#[test]
fn measurement_protocol_tightens_with_more_runs() {
    // More repetitions can only lower the recorded minimum — the reason
    // the paper's §3.3 takes min-of-3.
    let clean = 1000.0;
    let mut prev = f64::INFINITY;
    for runs in [1u32, 3, 10, 30] {
        let h = MeasurementHarness::new(runs, 0.08, 99);
        let m = h.measure(42, clean);
        assert!(m <= prev + 1e-12);
        prev = m;
    }
}
