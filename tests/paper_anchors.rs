//! The paper's headline claims, asserted end-to-end against this
//! reproduction (EXPERIMENTS.md records the same numbers).

use cloud_cost_accuracy::prelude::*;

/// Abstract: "Combining such sweet-spots can halve inference cost and
/// time with one-tenth reduction in accuracy for Caffenet CNN."
/// (Figure 8's conv1-2 configuration: 19 -> 13 min, top-5 80 -> 70 %.)
#[test]
fn headline_sweet_spot_combination() {
    let profile = caffenet_profile();
    let conv12 = PruneSpec::single("conv1", 0.3).with("conv2", 0.5);
    let (_, top5) = profile.accuracy(&conv12);
    let time_factor = profile.batched_time_factor(&conv12);

    // One-tenth accuracy reduction: 80 % -> 70 % top-5 (relative 12.5 %).
    assert!((top5 - 0.70).abs() < 0.01, "top5 {top5}");
    // Time cut by roughly a third here; the all-conv configuration gets
    // to ~42 % below baseline (the abstract's "halve" refers to the
    // cost+time joint picture across Figures 8-10).
    assert!(
        (time_factor - 13.0 / 19.0).abs() < 0.03,
        "factor {time_factor}"
    );

    let all = profile.all_knees_spec();
    let all_factor = profile.batched_time_factor(&all);
    assert!(all_factor < 0.60, "all-conv factor {all_factor}");
}

/// §4.3/4.4: "reduce cost and execution time by 55 % and 50 %
/// respectively for achieving the highest possible inference accuracy."
#[test]
fn headline_pareto_savings_at_highest_accuracy() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let p2: Vec<InstanceType> = catalog()
        .into_iter()
        .filter(|i| i.family() == "p2")
        .collect();
    let configs = enumerate_configs(&p2, 3);
    let evals = evaluate_grid(&versions, &configs, 1_000_000, &[48, 160, 512]);

    let feasible_t = feasible_by_deadline(&evals, 10.0 * 3600.0);
    let (_, _, time_saving) =
        savings_at_best_accuracy(&feasible_t, AccuracyMetric::Top1, Objective::Time, 1e-9).unwrap();
    assert!(
        time_saving >= 0.50,
        "Pareto selection must save >= 50 % time at best accuracy, got {time_saving}"
    );

    let feasible_c = feasible_by_budget(&evals, 300.0);
    let (_, _, cost_saving) =
        savings_at_best_accuracy(&feasible_c, AccuracyMetric::Top1, Objective::Cost, 1e-9).unwrap();
    assert!(
        cost_saving >= 0.55,
        "Pareto selection must save >= 55 % cost at best accuracy, got {cost_saving}"
    );
}

/// §4.5.3: TAR/CAR-guided allocation is polynomial while exhaustive
/// search is exponential — and both find the same best accuracy.
#[test]
fn headline_polynomial_vs_exponential() {
    let profile = caffenet_profile();
    let versions = caffenet_version_grid(&profile);
    let cat = catalog();
    let mut greedy_evals = Vec::new();
    let mut exhaustive_evals = Vec::new();
    for g_size in [4usize, 6, 8] {
        let pool: Vec<InstanceType> = (0..g_size)
            .map(|i| {
                if i % 2 == 0 {
                    cat[0].clone()
                } else {
                    cat[3].clone()
                }
            })
            .collect();
        let deadline = 6.0 * 3600.0;
        let budget = 100.0;
        let g = allocate(
            &versions,
            &pool,
            &AllocationRequest {
                w: 200_000,
                batch: 512,
                deadline_s: deadline,
                budget_usd: budget,
                metric: AccuracyMetric::Top1,
            },
        )
        .unwrap();
        let e = exhaustive_search(
            &versions,
            &pool,
            200_000,
            512,
            deadline,
            budget,
            AccuracyMetric::Top1,
        )
        .unwrap();
        assert_eq!(
            versions[g.version_idx].top1, e.accuracy,
            "greedy and exhaustive agree on best accuracy at |G|={g_size}"
        );
        greedy_evals.push(g.evaluations);
        exhaustive_evals.push(e.evaluations);
    }
    // Exhaustive grows ~4x per +2 resources; greedy stays flat/linear.
    assert!(exhaustive_evals[2] >= 10 * exhaustive_evals[0]);
    assert!(greedy_evals[2] <= greedy_evals[0] + 8);
}

/// Figure 4: pruning headroom exists for single inference on both CNNs.
#[test]
fn headline_single_inference_headroom() {
    for (profile, base, floor) in [
        (caffenet_profile(), 0.090, 0.050),
        (googlenet_profile(), 0.160, 0.100),
    ] {
        let unpruned = profile.single_latency_s(&PruneSpec::none());
        let pruned = profile.single_latency_s(&profile.uniform_spec(0.9));
        assert!((unpruned - base).abs() < 1e-9, "{}", profile.name);
        assert!(
            (pruned - floor).abs() < 0.01,
            "{}: {pruned} vs {floor}",
            profile.name
        );
    }
}

/// Observation 2: accuracy/time impact is NOT proportional to layer
/// parameter counts — conv4 has the most conv MACs after conv2/conv3 in
/// Caffenet, yet conv1 dominates accuracy sensitivity and conv2 time.
#[test]
fn observation2_impact_not_parameter_proportional() {
    let profile = caffenet_profile();
    // Accuracy sensitivity: conv1 damages most at 90 %.
    let damages: Vec<f64> = profile
        .conv_layer_names()
        .iter()
        .map(|l| profile.damage(&PruneSpec::single(*l, 0.9)))
        .collect();
    assert!(damages[0] > damages[1]);
    assert!(
        damages[0] > damages[3],
        "conv1 beats conv4 in accuracy impact"
    );
    // Time: conv2 (not conv1 or conv4) has the largest batched-time lever.
    let time_savings: Vec<f64> = profile
        .conv_layer_names()
        .iter()
        .map(|l| 1.0 - profile.batched_time_factor(&PruneSpec::single(*l, 0.9)))
        .collect();
    let max_idx = time_savings
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(max_idx, 1, "conv2 has the largest time lever");
}
