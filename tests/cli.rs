//! Integration tests of the `cap` command-line front end.

use std::process::Command;

fn cap(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage() {
    let (_, err, ok) = cap(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"));
}

#[test]
fn characterize_both_models() {
    for model in ["caffenet", "googlenet"] {
        let (out, _, ok) = cap(&["characterize", model]);
        assert!(ok, "{model}");
        assert!(out.contains(model));
        assert!(out.contains("single inference"));
        assert!(out.contains("headroom"));
    }
}

#[test]
fn sweep_reports_sweet_spot() {
    let (out, _, ok) = cap(&["sweep", "caffenet", "conv2"]);
    assert!(ok);
    assert!(out.contains("sweet spot: up to 50%"));
}

#[test]
fn sweep_unknown_layer_fails_with_hint() {
    let (_, err, ok) = cap(&["sweep", "caffenet", "conv9"]);
    assert!(!ok);
    assert!(err.contains("unknown layer"));
    let (_, err2, ok2) = cap(&["sweep", "caffenet"]);
    assert!(!ok2);
    assert!(err2.contains("conv1"), "lists prunable layers");
}

#[test]
fn spec_finds_paper_sweet_spot_combo() {
    let (out, _, ok) = cap(&["spec", "caffenet", "--top5", "0.70"]);
    assert!(ok);
    assert!(out.contains("conv1@30+conv2@50"), "{out}");
}

#[test]
fn spec_unreachable_floor_fails() {
    let (_, err, ok) = cap(&["spec", "caffenet", "--top5", "0.95"]);
    assert!(!ok);
    assert!(err.contains("unreachable"));
}

#[test]
fn allocate_reports_feasible_plan() {
    let (out, _, ok) = cap(&[
        "allocate",
        "--w",
        "500000",
        "--deadline-h",
        "4",
        "--budget",
        "50",
    ]);
    assert!(ok);
    assert!(out.contains("allocation:"));
    assert!(out.contains("cost $"));
}

#[test]
fn allocate_infeasible_exits_nonzero() {
    let (_, err, ok) = cap(&[
        "allocate",
        "--w",
        "1000000",
        "--deadline-h",
        "0.0001",
        "--budget",
        "0.01",
    ]);
    assert!(!ok);
    assert!(err.contains("no feasible"));
}
